//===-- ecas/obs/FlightRecorder.cpp - Always-on black-box ring ------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/obs/FlightRecorder.h"

#include <algorithm>
#include <string>

using namespace ecas;
using namespace ecas::obs;

namespace {

/// Process-wide recorder identity source, shared with nothing: flight
/// recorders and trace recorders keep separate caches, so their id
/// spaces are independent.
uint64_t nextFlightRecorderId() {
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

/// One thread's fixed-capacity ring. The storage vector is sized once
/// at registration and never grows; push() overwrites the slot at
/// Next % capacity under the ring's own leaf mutex. The mutex (rather
/// than the TraceRecorder's lock-free published-prefix chunks) is what
/// makes overwrite-oldest sound: a drain can copy a slot that a wrapped
/// writer is about to reuse, and append-only publishing cannot express
/// that. Uncontended lock/unlock allocates nothing, so the armed hot
/// path stays heap-silent.
struct FlightRecorder::ThreadRing {
  ThreadRing(uint32_t Id, size_t Cap) : ThreadId(Id) {
    Events.resize(Cap);
  }

  void push(const FlightEvent &Event) {
    LockGuard Lock(Mutex);
    Events[static_cast<size_t>(Next % Events.size())] = Event;
    ++Next;
  }

  /// Appends the surviving slots (oldest first) to \p Out and the
  /// overwrite count to \p Dropped.
  void snapshot(std::vector<FlightEvent> &Out, uint64_t &Dropped) const {
    LockGuard Lock(Mutex);
    const uint64_t Cap = Events.size();
    const uint64_t Resident = std::min(Next, Cap);
    Dropped += Next - Resident;
    for (uint64_t I = 0; I != Resident; ++I)
      Out.push_back(
          Events[static_cast<size_t>((Next - Resident + I) % Cap)]);
  }

  const uint32_t ThreadId;
  /// Leaf lock: nothing else is ever acquired while it is held.
  mutable AnnotatedMutex Mutex{"Obs.FlightRing"};
  std::vector<FlightEvent> Events ECAS_GUARDED_BY(Mutex);
  uint64_t Next ECAS_GUARDED_BY(Mutex) = 0;
};

FlightRecorder::FlightRecorder(size_t EventsPerThread, size_t DecisionCapacity)
    : RecorderId(nextFlightRecorderId()),
      Epoch(TraceRecorder::hostSeconds()),
      EventCap(std::max<size_t>(EventsPerThread, 1)),
      DecisionCap(std::max<size_t>(DecisionCapacity, 1)) {}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder::ThreadRing &FlightRecorder::localRing() {
  struct CacheEntry {
    uint64_t RecorderId;
    ThreadRing *Ring;
  };
  // One slot per (thread, recorder) pair this thread has recorded into;
  // scanning a handful of entries beats a mutex on every record. Keyed
  // on the never-reused RecorderId, so a destroyed recorder's entry can
  // never alias a new recorder at the same address.
  thread_local std::vector<CacheEntry> Cache;
  for (const CacheEntry &Entry : Cache)
    if (Entry.RecorderId == RecorderId)
      return *Entry.Ring;

  LockGuard Lock(RegistryMutex);
  auto Ring = std::make_unique<ThreadRing>(
      static_cast<uint32_t>(Rings.size()), EventCap);
  ThreadRing &Ref = *Ring;
  Rings.push_back(std::move(Ring));
  Cache.push_back({RecorderId, &Ref});
  return Ref;
}

void FlightRecorder::record(EventKind Kind, const char *Category,
                            const char *Name, double Value) {
  ThreadRing &Ring = localRing();
  FlightEvent Event;
  Event.Kind = Kind;
  Event.Category = Category;
  Event.Name = Name;
  Event.HostSeconds = TraceRecorder::hostSeconds();
  Event.Value = Value;
  Event.ThreadId = Ring.ThreadId;
  Event.Seq = NextSeq.fetch_add(1, std::memory_order_relaxed);
  Ring.push(Event);
}

void FlightRecorder::instant(const char *Category, const char *Name,
                             double Value) {
  record(EventKind::Instant, Category, Name, Value);
}

void FlightRecorder::count(const char *Name, double Delta) {
  record(EventKind::Counter, "counter", Name, Delta);
}

void FlightRecorder::recordDecision(const DecisionRecord &Record) {
  LockGuard Lock(DecisionMutex);
  if (DecisionRing.size() < DecisionCap) {
    // Growth phase: reserve the full ring up front so the steady state
    // (the phase HotPathTest measures after warmup) never reallocates.
    if (DecisionRing.capacity() < DecisionCap)
      DecisionRing.reserve(DecisionCap);
    DecisionRing.push_back(Record);
    DecisionRing.back().Sequence = NextDecision;
  } else {
    DecisionRecord &Slot =
        DecisionRing[static_cast<size_t>(NextDecision % DecisionCap)];
    Slot = Record;
    Slot.Sequence = NextDecision;
  }
  ++NextDecision;
}

FlightSnapshot FlightRecorder::drain() const {
  FlightSnapshot Snap;
  Snap.Trace.EpochHostSeconds = Epoch;

  std::vector<FlightEvent> Raw;
  {
    LockGuard Lock(RegistryMutex);
    for (const std::unique_ptr<ThreadRing> &Ring : Rings)
      Ring->snapshot(Raw, Snap.EventsDropped);
  }
  Snap.EventsRecorded = NextSeq.load(std::memory_order_relaxed);

  Snap.Trace.Events.reserve(Raw.size());
  for (const FlightEvent &E : Raw) {
    TraceEvent Out;
    Out.Kind = E.Kind;
    Out.Category = E.Category;
    Out.Name = E.Name;
    Out.HostSeconds = E.HostSeconds;
    Out.Value = E.Value;
    Out.ThreadId = E.ThreadId;
    Out.Seq = E.Seq;
    Snap.Trace.Events.push_back(std::move(Out));
  }
  std::sort(Snap.Trace.Events.begin(), Snap.Trace.Events.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              if (A.HostSeconds != B.HostSeconds)
                return A.HostSeconds < B.HostSeconds;
              return A.Seq < B.Seq;
            });

  // Counter totals over the surviving tail (drops are gone for good —
  // the point of a flight recorder is the recent window, not lifetime
  // accounting; lifetime counts live in the MetricsRegistry).
  for (const TraceEvent &E : Snap.Trace.Events) {
    if (E.Kind != EventKind::Counter)
      continue;
    auto It = std::find_if(Snap.Trace.Counters.begin(),
                           Snap.Trace.Counters.end(),
                           [&](const CounterTotal &T) {
                             return T.Name == E.Name;
                           });
    if (It == Snap.Trace.Counters.end()) {
      CounterTotal Total;
      Total.Name = E.Name;
      Snap.Trace.Counters.push_back(std::move(Total));
      It = Snap.Trace.Counters.end() - 1;
    }
    It->Total += E.Value;
    ++It->Samples;
  }
  std::sort(Snap.Trace.Counters.begin(), Snap.Trace.Counters.end(),
            [](const CounterTotal &A, const CounterTotal &B) {
              return A.Name < B.Name;
            });

  {
    LockGuard Lock(DecisionMutex);
    Snap.DecisionsRecorded = NextDecision;
    const uint64_t Resident =
        std::min<uint64_t>(NextDecision, DecisionRing.size());
    Snap.DecisionsDropped = NextDecision - Resident;
    Snap.Decisions.reserve(static_cast<size_t>(Resident));
    for (uint64_t I = 0; I != Resident; ++I)
      Snap.Decisions.push_back(DecisionRing[static_cast<size_t>(
          (NextDecision - Resident + I) % DecisionRing.size())]);
  }
  return Snap;
}
