//===-- ecas/obs/LastGasp.h - Crash-time forensic write --------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The forensics layer's crash half (DESIGN.md §16). A process dying on
/// SIGSEGV/SIGABRT/std::terminate cannot run the incident writer — no
/// malloc, no locks, no stdio are legal in a signal handler — so the
/// work is split across time: the serve loop's poll thread periodically
/// renders the last-gasp document (obs/Incident.h's renderLastGasp) and
/// hands it to refresh(), which copies it into one of two static
/// buffers and publishes the index with a release store. The installed
/// fatal-signal and terminate handlers then do the only thing they
/// legally can: open(2) + write(2) of the pre-serialized active buffer,
/// then re-raise so the exit status still reflects the crash.
///
/// Signal dispositions are process-global state, so LastGasp is a
/// process singleton. arm() is idempotent; refresh() is cheap enough
/// for a 50 ms poll tick (one bounded memcpy under a leaf mutex).
///
/// SIGKILL is uncatchable by design — the poll loop additionally
/// mirrors each refreshed document to disk (writeFileAtomic), so even a
/// kill -9 leaves the last tick's forensics behind. The handlers exist
/// for the crashes where a fresher write is possible.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_OBS_LASTGASP_H
#define ECAS_OBS_LASTGASP_H

#include "ecas/support/Error.h"

#include <string>

namespace ecas::obs {

/// Facade over the process-global crash-write machinery.
class LastGasp {
public:
  /// The process singleton (signal handlers are global; so is this).
  static LastGasp &instance();

  /// Installs the fatal-signal handlers (SIGSEGV, SIGBUS, SIGILL,
  /// SIGFPE, SIGABRT) and the std::terminate hook, and records \p Path
  /// as the crash-write destination. Idempotent; re-arming just swaps
  /// the path. Fails InvalidArgument on an empty or over-long path.
  Status arm(const std::string &Path);

  /// Restores default dispositions and forgets the path (tests only;
  /// a serving process stays armed for life).
  void disarm();

  /// Publishes \p Snapshot as the document a crash would write. Bounded
  /// copy into a static double buffer; truncates past the buffer size.
  void refresh(const std::string &Snapshot);

  bool armed() const;
  std::string path() const;

  /// Capacity of each snapshot buffer, exposed so callers can size
  /// their documents to fit.
  static size_t bufferBytes();

private:
  LastGasp() = default;
};

} // namespace ecas::obs

#endif // ECAS_OBS_LASTGASP_H
