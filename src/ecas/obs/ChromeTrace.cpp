//===-- ecas/obs/ChromeTrace.cpp - Chrome trace-event exporter ------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/obs/ChromeTrace.h"

#include "ecas/support/Format.h"

#include <cmath>
#include <fstream>
#include <map>

using namespace ecas;
using namespace ecas::obs;

//===----------------------------------------------------------------------===//
// Export
//===----------------------------------------------------------------------===//

/// JSON string escaping for the small set of payloads we emit (names,
/// details): quotes, backslashes, and control characters.
static std::string jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size() + 2);
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

namespace {
/// Stream-builder for one trace document; keeps the comma bookkeeping in
/// one place.
class EventArray {
public:
  void add(const std::string &Fields) {
    Body += Body.empty() ? "\n  {" : ",\n  {";
    Body += Fields;
    Body += "}";
  }

  std::string finish() const {
    return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[" + Body + "\n]}\n";
  }

private:
  std::string Body;
};
} // namespace

static std::string commonFields(const char *Phase, const TraceEvent &E,
                                double TsUs, long long Pid) {
  std::string Fields = formatString(
      "\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,"
      "\"pid\":%lld,\"tid\":%u",
      jsonEscape(E.Name).c_str(), jsonEscape(E.Category).c_str(), Phase,
      TsUs, Pid, E.ThreadId);
  if (!E.Detail.empty())
    Fields += ",\"args\":{\"detail\":\"" + jsonEscape(E.Detail) + "\"}";
  return Fields;
}

static std::string metadataEvent(const char *What, long long Pid,
                                 long long Tid, const std::string &Name) {
  std::string Fields = formatString(
      "\"name\":\"%s\",\"ph\":\"M\",\"pid\":%lld,\"tid\":%lld,"
      "\"args\":{\"name\":\"%s\"}",
      What, Pid, Tid, jsonEscape(Name).c_str());
  return Fields;
}

std::string ecas::obs::renderChromeTrace(const TraceLog &Log) {
  constexpr long long HostPid = 1;
  constexpr long long VirtualPid = 2;
  EventArray Out;
  Out.add(metadataEvent("process_name", HostPid, 0, "host clock"));
  Out.add(metadataEvent("process_name", VirtualPid, 0, "virtual clock"));

  std::map<std::string, double> Running; // cumulative counter values
  for (const TraceEvent &E : Log.Events) {
    double HostUs = (E.HostSeconds - Log.EpochHostSeconds) * 1e6;
    double VirtUs = E.VirtualSeconds * 1e6;
    switch (E.Kind) {
    case EventKind::SpanBegin:
      Out.add(commonFields("B", E, HostUs, HostPid));
      if (E.hasVirtualTime())
        Out.add(commonFields("B", E, VirtUs, VirtualPid));
      break;
    case EventKind::SpanEnd:
      Out.add(commonFields("E", E, HostUs, HostPid));
      if (E.hasVirtualTime())
        Out.add(commonFields("E", E, VirtUs, VirtualPid));
      break;
    case EventKind::SpanComplete:
      Out.add(commonFields("X", E, HostUs, HostPid) +
              formatString(",\"dur\":%.3f", E.Value * 1e6));
      break;
    case EventKind::Instant:
      // Scope "t": thread-scoped instant marker.
      Out.add(commonFields("i", E, HostUs, HostPid) + ",\"s\":\"t\"");
      if (E.hasVirtualTime())
        Out.add(commonFields("i", E, VirtUs, VirtualPid) + ",\"s\":\"t\"");
      break;
    case EventKind::Counter: {
      double &Value = Running[E.Name];
      Value += E.Value;
      Out.add(formatString(
          "\"name\":\"%s\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":%.3f,"
          "\"pid\":%lld,\"tid\":0,\"args\":{\"value\":%.6g}",
          jsonEscape(E.Name).c_str(), HostUs, HostPid, Value));
      break;
    }
    }
  }
  return Out.finish();
}

ChromeTraceSink::ChromeTraceSink(std::string PathIn)
    : Path(std::move(PathIn)) {}

Status ChromeTraceSink::consume(const TraceLog &Log) {
  Json = renderChromeTrace(Log);
  if (Path.empty())
    return Status::success();
  std::ofstream File(Path, std::ios::binary);
  if (!File)
    return Status::error(ErrCode::IoError, "cannot write trace " + Path);
  File << Json;
  File.flush();
  if (!File)
    return Status::error(ErrCode::IoError, "short write to " + Path);
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Parse: a strict, minimal recursive-descent JSON reader — just enough
// structure to round-trip what renderChromeTrace emits while rejecting
// any malformed document.
//===----------------------------------------------------------------------===//

namespace {

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object } Kind =
      Type::Null;
  bool Bool = false;
  double Number = 0.0;
  std::string String;
  std::vector<JsonValue> Array;
  std::vector<std::pair<std::string, JsonValue>> Object;

  const JsonValue *field(const std::string &Name) const {
    for (const auto &[Key, Value] : Object)
      if (Key == Name)
        return &Value;
    return nullptr;
  }
};

class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : Text(Text) {}

  ErrorOr<JsonValue> parse() {
    JsonValue Root;
    if (Status S = value(Root); !S.ok())
      return S;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing garbage after document");
    return Root;
  }

private:
  Status fail(const std::string &Why) const {
    return Status::error(ErrCode::ParseError,
                         formatString("json offset %zu: ", Pos) + Why);
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  Status value(JsonValue &Out) {
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return object(Out);
    if (C == '[')
      return array(Out);
    if (C == '"') {
      Out.Kind = JsonValue::Type::String;
      return string(Out.String);
    }
    if (Text.compare(Pos, 4, "true") == 0) {
      Out.Kind = JsonValue::Type::Bool;
      Out.Bool = true;
      Pos += 4;
      return Status::success();
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Out.Kind = JsonValue::Type::Bool;
      Pos += 5;
      return Status::success();
    }
    if (Text.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      return Status::success();
    }
    return number(Out);
  }

  Status object(JsonValue &Out) {
    Out.Kind = JsonValue::Type::Object;
    ++Pos; // '{'
    if (consume('}'))
      return Status::success();
    while (true) {
      skipSpace();
      std::string Key;
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      if (Status S = string(Key); !S.ok())
        return S;
      if (!consume(':'))
        return fail("expected ':' after key '" + Key + "'");
      JsonValue Member;
      if (Status S = value(Member); !S.ok())
        return S;
      Out.Object.emplace_back(std::move(Key), std::move(Member));
      if (consume(','))
        continue;
      if (consume('}'))
        return Status::success();
      return fail("expected ',' or '}' in object");
    }
  }

  Status array(JsonValue &Out) {
    Out.Kind = JsonValue::Type::Array;
    ++Pos; // '['
    if (consume(']'))
      return Status::success();
    while (true) {
      JsonValue Element;
      if (Status S = value(Element); !S.ok())
        return S;
      Out.Array.push_back(std::move(Element));
      if (consume(','))
        continue;
      if (consume(']'))
        return Status::success();
      return fail("expected ',' or ']' in array");
    }
  }

  Status string(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Status::success();
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("dangling escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code += static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code += static_cast<unsigned>(H - 'a') + 10;
          else if (H >= 'A' && H <= 'F')
            Code += static_cast<unsigned>(H - 'A') + 10;
          else
            return fail("bad hex digit in \\u escape");
        }
        // The emitter only escapes control characters; anything in the
        // BMP round-trips as UTF-8 well enough for trace payloads.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  Status number(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    double Parsed = 0.0;
    if (Pos == Start ||
        !parseDouble(Text.substr(Start, Pos - Start), Parsed))
      return fail("malformed number");
    Out.Kind = JsonValue::Type::Number;
    Out.Number = Parsed;
    return Status::success();
  }

  const std::string &Text;
  size_t Pos = 0;
};

} // namespace

size_t ChromeTraceData::countPhase(const std::string &Phase) const {
  size_t N = 0;
  for (const ChromeTraceEvent &E : Events)
    N += E.Phase == Phase ? 1 : 0;
  return N;
}

bool ChromeTraceData::hasEventNamed(const std::string &Name) const {
  for (const ChromeTraceEvent &E : Events)
    if (E.Phase != "M" && E.Name == Name)
      return true;
  return false;
}

ErrorOr<ChromeTraceData> ecas::obs::parseChromeTrace(const std::string &Json) {
  ErrorOr<JsonValue> Root = JsonParser(Json).parse();
  if (!Root)
    return Root.status();

  const JsonValue *Array = nullptr;
  if (Root->Kind == JsonValue::Type::Array) {
    Array = &*Root;
  } else if (Root->Kind == JsonValue::Type::Object) {
    Array = Root->field("traceEvents");
    if (!Array || Array->Kind != JsonValue::Type::Array)
      return Status::error(ErrCode::ParseError,
                           "document has no traceEvents array");
  } else {
    return Status::error(ErrCode::ParseError,
                         "document is neither an array nor an object");
  }

  ChromeTraceData Data;
  Data.Events.reserve(Array->Array.size());
  for (const JsonValue &Item : Array->Array) {
    if (Item.Kind != JsonValue::Type::Object)
      return Status::error(ErrCode::ParseError,
                           "traceEvents element is not an object");
    ChromeTraceEvent E;
    auto TakeString = [&Item](const char *Key, std::string &Out) {
      if (const JsonValue *V = Item.field(Key);
          V && V->Kind == JsonValue::Type::String)
        Out = V->String;
    };
    auto TakeNumber = [&Item](const char *Key, double &Out) {
      if (const JsonValue *V = Item.field(Key);
          V && V->Kind == JsonValue::Type::Number)
        Out = V->Number;
    };
    TakeString("name", E.Name);
    TakeString("cat", E.Category);
    TakeString("ph", E.Phase);
    TakeNumber("ts", E.TimestampUs);
    TakeNumber("dur", E.DurationUs);
    double Pid = 0.0, Tid = 0.0;
    TakeNumber("pid", Pid);
    TakeNumber("tid", Tid);
    E.Pid = static_cast<long long>(Pid);
    E.Tid = static_cast<long long>(Tid);
    if (E.Phase.empty())
      return Status::error(ErrCode::ParseError,
                           "trace event lacks a phase ('ph')");
    Data.Events.push_back(std::move(E));
  }
  return Data;
}
