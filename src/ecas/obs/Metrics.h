//===-- ecas/obs/Metrics.h - Counters, gauges, histograms ------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer's aggregation half. Where obs/Trace.h keeps
/// every event (and is drained per run), a MetricsRegistry keeps only
/// running aggregates — counters, gauges, and log-bucketed histograms —
/// cheap enough to leave attached to a long-running service and
/// queryable at any moment.
///
/// The contract mirrors the TraceRecorder's: instruments only fold
/// observations into their own atomics, never feed anything back into
/// scheduling state, and a null registry pointer no-ops every record
/// helper, so un-metered runs stay bit-identical (MetricsTest's
/// regression, the sibling of ObsTest's null-recorder guarantee).
///
/// Fast path: registration (counter()/gauge()/histogram()) takes the
/// registry's leaf mutex once and returns a stable reference; callers
/// cache it (EasScheduler pre-registers everything at construction).
/// Every subsequent add()/set()/record() is a handful of lock-free
/// atomic RMWs, safe from any thread, and snapshots taken concurrently
/// see each thread's published prefix — histograms are mergeable across
/// threads by construction because buckets are independent atomics.
///
/// Metric names come from obs/MetricNames.h (lowercase snake_case with
/// the eas_ prefix, enforced by ecas-lint's metric-name rule). Label
/// values are free-form; the exporters escape them.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_OBS_METRICS_H
#define ECAS_OBS_METRICS_H

#include "ecas/support/ThreadAnnotations.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ecas::obs {

/// Key/value pairs qualifying one instrument ("class" -> "memory/...").
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// A monotonically increasing count. add() is lock-free.
class Counter {
public:
  void add(double Delta = 1.0) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  double value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<double> Value{0.0};
};

/// A value that can go up and down (drain seconds, MSR sample tallies).
class Gauge {
public:
  void set(double V) { Value.store(V, std::memory_order_relaxed); }
  void add(double Delta) { Value.fetch_add(Delta, std::memory_order_relaxed); }
  double value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<double> Value{0.0};
};

/// One histogram's state, copied out for export or cross-thread merges.
struct HistogramSnapshot {
  /// Ascending finite bucket upper edges; Counts carries one entry per
  /// edge plus a trailing overflow bucket.
  std::vector<double> UpperBounds;
  std::vector<uint64_t> Counts;
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;

  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0.0; }
  /// Bucket-interpolated quantile (support/Stats' shared
  /// quantileFromBuckets); NaN when empty.
  double quantile(double Q) const;
  /// Folds \p Other in (bucket layouts must match).
  void merge(const HistogramSnapshot &Other);
};

/// Log- or linear-bucketed distribution. record() is lock-free: one
/// branchless bound search plus independent atomic RMWs, so concurrent
/// writers never contend on a lock and their contributions merge by
/// construction.
class Histogram {
public:
  /// \p Bounds are ascending finite upper edges; an implicit overflow
  /// bucket catches everything above the last. Use logBuckets() /
  /// linearBuckets() to build them.
  explicit Histogram(std::vector<double> Bounds);

  /// Folds \p Value in. NaN observations are dropped (a rel-error with
  /// a zero measurement must not poison the distribution); negative
  /// and underflowing values land in the first bucket.
  void record(double Value);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }

  const std::vector<double> &bounds() const { return UpperBounds; }

  /// Consistent-enough copy under concurrent writers: each atomic is
  /// read once; a snapshot taken mid-record may be ahead in one bucket
  /// and behind in Sum by one sample, which aggregation tolerates.
  HistogramSnapshot snapshot() const;

private:
  const std::vector<double> UpperBounds;
  std::unique_ptr<std::atomic<uint64_t>[]> Buckets; // size() + 1 overflow
  std::atomic<uint64_t> Count{0};
  std::atomic<double> Sum{0.0};
  std::atomic<double> Min;
  std::atomic<double> Max;
};

/// \p Count geometrically spaced upper edges starting at \p First and
/// growing by \p Factor — the log-bucketed layout rel-error and latency
/// histograms use.
std::vector<double> logBuckets(double First, double Factor, unsigned Count);

/// \p Count evenly spaced upper edges: Start + Width, Start + 2*Width,
/// ... — the layout the alpha distribution over [0, 1] uses.
std::vector<double> linearBuckets(double Start, double Width, unsigned Count);

/// What kind of instrument one exported sample came from.
enum class MetricKind { Counter, Gauge, Histogram };

/// Returns "counter", "gauge", or "histogram".
const char *metricKindName(MetricKind Kind);

/// One instrument's exported state.
struct MetricSample {
  std::string Name;
  MetricLabels Labels;
  std::string Help;
  MetricKind Kind = MetricKind::Counter;
  /// Counter/gauge value (histograms use Hist).
  double Value = 0.0;
  HistogramSnapshot Hist;
};

/// Everything a registry held at one instant, in exporter-ready form,
/// sorted by (name, labels).
struct MetricsSnapshot {
  std::vector<MetricSample> Samples;

  /// First sample named \p Name (any labels), or nullptr.
  const MetricSample *find(const std::string &Name) const;
  /// Sample matching \p Name and \p Labels exactly, or nullptr.
  const MetricSample *find(const std::string &Name,
                           const MetricLabels &Labels) const;
  /// Sum of counter/gauge values across every labelled variant of
  /// \p Name (0 when absent).
  double total(const std::string &Name) const;
};

/// Owns every instrument of one service (or one run). Thread-safe; see
/// the file comment for the locking story. Instrument references stay
/// valid for the registry's lifetime.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Finds or creates. Re-registration with the same name and labels
  /// returns the existing instrument; \p Help is kept from the first
  /// registration. Registering the same key as a different kind is a
  /// usage error (checked).
  Counter &counter(const char *Name, MetricLabels Labels = {},
                   const char *Help = "");
  Gauge &gauge(const char *Name, MetricLabels Labels = {},
               const char *Help = "");
  /// \p Bounds are consulted only on first registration.
  Histogram &histogram(const char *Name, std::vector<double> Bounds,
                       MetricLabels Labels = {}, const char *Help = "");

  /// Copies every instrument's current state. Safe under concurrent
  /// recording (each writer's published prefix is visible).
  MetricsSnapshot snapshot() const;

  size_t size() const;

private:
  struct Instrument {
    std::string Name;
    MetricLabels Labels;
    std::string Help;
    MetricKind Kind;
    std::unique_ptr<Counter> C;
    std::unique_ptr<Gauge> G;
    std::unique_ptr<Histogram> H;
  };

  Instrument &obtain(const char *Name, MetricLabels &&Labels,
                     const char *Help, MetricKind Kind,
                     std::vector<double> *Bounds);

  /// Leaf lock (DESIGN.md §11): guards the instrument list only; no
  /// other lock is ever acquired while it is held, and it is taken only
  /// at registration and snapshot — never on the record fast path.
  mutable AnnotatedMutex Mutex{"Obs.Metrics"};
  std::vector<std::unique_ptr<Instrument>> Instruments
      ECAS_GUARDED_BY(Mutex);
};

} // namespace ecas::obs

#endif // ECAS_OBS_METRICS_H
