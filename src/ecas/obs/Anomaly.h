//===-- ecas/obs/Anomaly.h - Metrics-driven anomaly detectors --*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The forensics layer's trigger half (DESIGN.md §16): an
/// AnomalyDetector is evaluated periodically — in the serve loop's poll
/// thread, never on a decision path — over MetricsSnapshots of the
/// existing registry, and answers "did anything just go wrong?" as a
/// list of AnomalyTriggers. Four rules:
///
///   - sla0-burn-rate: new eas_service_deadline_miss_total{sla="SLA0"}
///     increments since the previous evaluation reached the burn
///     threshold.
///   - model-drift: the windowed mean of eas_model_*_rel_error, EWMA
///     smoothed, rose above a multiple of a baseline frozen after the
///     first DriftBaselineMinSamples observations (cold start: no
///     baseline yet, no trigger — the cold-baseline edge case).
///   - quarantine-entry: eas_health_quarantines_total advanced.
///   - latency-p99-regression: the p99 of eas_invocation_seconds rose
///     above a multiple of its own frozen baseline.
///
/// Counter semantics are defensive: a counter that moved *backwards*
/// (process restart feeding a fresh registry to a long-lived detector,
/// or a recovered service re-registering) re-bases the rule's state
/// instead of firing or wedging — the counter-reset edge case.
///
/// The detector is pure over its inputs: it never touches the registry,
/// the scheduler, or the clock (callers pass NowSec), so tests drive it
/// with hand-built snapshots.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_OBS_ANOMALY_H
#define ECAS_OBS_ANOMALY_H

#include "ecas/obs/Metrics.h"

#include <string>
#include <vector>

namespace ecas::obs {

/// Detector tunables; the defaults suit the serve loop's 50 ms poll.
struct AnomalyConfig {
  /// sla0-burn-rate fires when at least this many new SLA0 deadline
  /// misses landed since the previous evaluation.
  double BurnRateMisses = 1.0;
  /// Observations a rel-error histogram must hold before its baseline
  /// freezes; until then the drift rule stays cold and silent.
  uint64_t DriftBaselineMinSamples = 32;
  /// EWMA smoothing weight applied to each evaluation's windowed mean.
  double DriftEwmaAlpha = 0.25;
  /// model-drift fires when the EWMA mean exceeds
  /// max(DriftFactor * baseline, baseline + DriftMinError).
  double DriftFactor = 2.0;
  double DriftMinError = 0.05;
  /// Observations eas_invocation_seconds must hold before its p99
  /// baseline freezes.
  uint64_t LatencyBaselineMinSamples = 64;
  /// latency-p99-regression fires when the current p99 exceeds
  /// LatencyP99Factor * the frozen baseline p99.
  double LatencyP99Factor = 3.0;
};

/// One fired rule: what tripped, on which metric, and the numbers that
/// justify it (threshold crossed, value observed) — exactly what the
/// incident manifest records.
struct AnomalyTrigger {
  std::string Rule;
  std::string Metric;
  double Threshold = 0.0;
  double Observed = 0.0;
  /// Free-form context ("baseline=0.041 ewma=0.112").
  std::string Note;
};

/// Stateful periodic evaluator. Not thread-safe: one poll thread owns
/// it (evaluations are inherently ordered — each consumes the delta
/// since the last).
class AnomalyDetector {
public:
  explicit AnomalyDetector(AnomalyConfig Config = {});

  /// Evaluates every rule against \p Snap. Multiple rules firing on one
  /// snapshot all appear in the result — the caller coalesces them into
  /// a single incident bundle.
  std::vector<AnomalyTrigger> evaluate(const MetricsSnapshot &Snap,
                                       double NowSec);

  const AnomalyConfig &config() const { return Config; }

  /// True once the named drift baseline ("time"/"energy") is frozen —
  /// exposed so tests can pin the cold-baseline edge case.
  bool driftBaselineFrozen(const std::string &Which) const;
  /// True once the latency p99 baseline is frozen.
  bool latencyBaselineFrozen() const { return Latency.Frozen; }

private:
  /// Windowed-mean + EWMA drift state for one rel-error family.
  struct DriftState {
    bool Frozen = false;
    double Baseline = 0.0;
    double Ewma = 0.0;
    bool EwmaSeeded = false;
    uint64_t PrevCount = 0;
    double PrevSum = 0.0;
  };

  void evaluateBurnRate(const MetricsSnapshot &Snap,
                        std::vector<AnomalyTrigger> &Out);
  void evaluateDrift(const MetricsSnapshot &Snap, const char *MetricName,
                     const char *Which, DriftState &State,
                     std::vector<AnomalyTrigger> &Out);
  void evaluateQuarantine(const MetricsSnapshot &Snap,
                          std::vector<AnomalyTrigger> &Out);
  void evaluateLatency(const MetricsSnapshot &Snap,
                       std::vector<AnomalyTrigger> &Out);

  AnomalyConfig Config;

  double PrevSla0Misses = 0.0;
  bool Sla0Seen = false;

  DriftState TimeDrift;
  DriftState EnergyDrift;

  double PrevQuarantines = 0.0;
  bool QuarantinesSeen = false;

  struct LatencyState {
    bool Frozen = false;
    double BaselineP99 = 0.0;
    uint64_t PrevCount = 0;
  };
  LatencyState Latency;
};

} // namespace ecas::obs

#endif // ECAS_OBS_ANOMALY_H
