//===-- ecas/obs/Trace.h - Spans, counters, per-thread buffers -*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer's capture half: a TraceRecorder collects
/// spans (nested begin/end), instant events, and monotonic counters into
/// per-thread lock-free buffers, stamped with both the host steady clock
/// and (where the call site has one) the simulator's virtual clock.
///
/// Recording is designed so that *instrumented code paths make exactly
/// the same decisions whether or not a recorder is attached*: the
/// recorder only reads clocks and appends to its own buffers — it never
/// feeds anything back into scheduling state, virtual time, or the
/// random streams. A null recorder pointer is the null sink; every
/// record helper no-ops on it, so un-traced runs stay bit-identical to
/// the pre-observability code (enforced by ObsTest's regression).
///
/// Writer path: each thread owns a chunked buffer registered with the
/// recorder; appends touch no lock (the chunk's element count publishes
/// with a release store, chunk links with release pointers). The only
/// mutex, "Obs.Registry", guards the buffer registry and is a leaf: it
/// is taken once per (thread, recorder) pair at registration and at
/// drain, and nothing else is ever acquired while holding it.
///
/// Drain half: drain() snapshots every buffer into one TraceLog (events
/// merged in host-clock order, counter deltas summed into totals) which
/// pluggable TraceSinks (obs/Sinks.h, obs/ChromeTrace.h) render.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_OBS_TRACE_H
#define ECAS_OBS_TRACE_H

#include "ecas/support/Error.h"
#include "ecas/support/ThreadAnnotations.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace ecas::obs {

/// What one recorded event is.
enum class EventKind {
  /// Opens a span on the recording thread; pairs with the next SpanEnd
  /// of the same name on that thread (spans nest per thread).
  SpanBegin,
  SpanEnd,
  /// A complete span recorded after the fact with an explicit start and
  /// duration (Value) — how MiniCl publishes its QUEUED/START/END
  /// timestamps once a command settles.
  SpanComplete,
  /// A point event.
  Instant,
  /// A monotonic counter increment of Value.
  Counter,
};

/// Returns "span-begin", "span-end", "span-complete", "instant", or
/// "counter".
const char *eventKindName(EventKind Kind);

/// One recorded event. Name and Category must be string literals (or
/// otherwise outlive the recorder): events store the pointers, not
/// copies, so the hot path never allocates for them.
struct TraceEvent {
  EventKind Kind = EventKind::Instant;
  const char *Category = "";
  const char *Name = "";
  /// Host steady-clock seconds (SpanComplete: the span's start).
  double HostSeconds = 0.0;
  /// Virtual SimProcessor seconds, or NaN when the site has no
  /// simulated clock (host-side runtime layers).
  double VirtualSeconds = std::numeric_limits<double>::quiet_NaN();
  /// Counter delta, or SpanComplete duration in host seconds.
  double Value = 0.0;
  /// Dense per-recorder id of the recording thread.
  uint32_t ThreadId = 0;
  /// Global record order, the tie-break for equal timestamps.
  uint64_t Seq = 0;
  /// Optional free-form payload ("alpha=0.40 evals=11").
  std::string Detail;

  bool hasVirtualTime() const { return VirtualSeconds == VirtualSeconds; }
};

/// Final value of one counter across the whole recording.
struct CounterTotal {
  std::string Name;
  double Total = 0.0;
  uint64_t Samples = 0;
};

/// Everything a recorder captured, in sink-ready form.
struct TraceLog {
  /// All events, sorted by (HostSeconds, Seq).
  std::vector<TraceEvent> Events;
  /// Counter totals, sorted by name.
  std::vector<CounterTotal> Counters;
  /// Host steady-clock seconds at recorder construction; sinks render
  /// timestamps relative to this epoch.
  double EpochHostSeconds = 0.0;

  /// The total for \p Name, or 0 when the counter never fired.
  double counterTotal(const std::string &Name) const;
  /// Number of events with \p Name (any kind).
  size_t countNamed(const std::string &Name) const;
};

/// Destination for a drained TraceLog. Sinks are passive renderers: the
/// contract is one consume() call per drain, receiving events already
/// merged and time-ordered; a sink must not assume it is the only
/// consumer of a log (drainTo can feed several).
class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual Status consume(const TraceLog &Log) = 0;
};

/// Collects events from any number of threads. Construction is cheap;
/// attach one per run (ExecutionSession::RunOptions::Recorder) or per
/// service (EasConfig::Trace). All record methods are thread-safe and
/// lock-free after a thread's first event.
class TraceRecorder {
public:
  TraceRecorder();
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder &) = delete;
  TraceRecorder &operator=(const TraceRecorder &) = delete;

  /// Opens a span named \p Name on the calling thread.
  void beginSpan(const char *Category, const char *Name,
                 double VirtualSec = std::numeric_limits<double>::quiet_NaN(),
                 std::string Detail = {});

  /// Closes the calling thread's innermost span named \p Name.
  void endSpan(const char *Category, const char *Name,
               double VirtualSec = std::numeric_limits<double>::quiet_NaN(),
               std::string Detail = {});

  /// Records a complete span after the fact from explicit host
  /// timestamps (MiniCl's profiling-event channel).
  void completeSpan(const char *Category, const char *Name,
                    double StartHostSec, double DurationSec,
                    double VirtualSec =
                        std::numeric_limits<double>::quiet_NaN(),
                    std::string Detail = {});

  /// Records a point event.
  void instant(const char *Category, const char *Name,
               double VirtualSec = std::numeric_limits<double>::quiet_NaN(),
               std::string Detail = {});

  /// Adds \p Delta to the monotonic counter \p Name (the record is the
  /// delta; totals are folded at drain).
  void count(const char *Name, double Delta = 1.0);

  /// Events recorded so far (approximate under concurrent writers).
  uint64_t eventsRecorded() const;

  /// Snapshots everything recorded so far into one time-ordered log.
  /// Safe to call while other threads are still recording: each buffer
  /// contributes the prefix its writer has published. Does not reset.
  TraceLog drain() const;

  /// drain() piped into \p Sink.
  Status drainTo(TraceSink &Sink) const;

  /// Host steady-clock seconds now — the clock every event is stamped
  /// with, exposed so tests and sinks can correlate.
  static double hostSeconds();

private:
  struct ThreadBuffer;

  /// The calling thread's buffer, registering one on first use.
  ThreadBuffer &localBuffer();
  void record(TraceEvent Event);

  /// Never-reused recorder identity; thread-local caches key on it so a
  /// stale cache entry for a destroyed recorder can never alias a new
  /// one at the same address.
  const uint64_t RecorderId;
  const double Epoch;

  /// Leaf lock (DESIGN.md §10): guards the registry only; no other lock
  /// is ever acquired while it is held.
  mutable AnnotatedMutex RegistryMutex{"Obs.Registry"};
  std::vector<std::unique_ptr<ThreadBuffer>> Buffers
      ECAS_GUARDED_BY(RegistryMutex);

  std::atomic<uint64_t> NextSeq{0};
};

/// RAII span: begins on construction, ends on destruction — safe across
/// the scheduler's early returns. A null recorder makes it a no-op. The
/// optional \p VirtualNow callback is re-read at both edges so the end
/// event carries the advanced virtual clock.
class ScopedSpan {
public:
  ScopedSpan(TraceRecorder *Recorder, const char *Category, const char *Name,
             std::function<double()> VirtualNow = {},
             std::string BeginDetail = {});
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  /// Attaches a payload to the end event ("alpha=0.40").
  void setEndDetail(std::string Detail) { EndDetail = std::move(Detail); }

private:
  TraceRecorder *Recorder;
  const char *Category;
  const char *Name;
  std::function<double()> VirtualNow;
  std::string EndDetail;
};

} // namespace ecas::obs

#endif // ECAS_OBS_TRACE_H
