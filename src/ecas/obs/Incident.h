//===-- ecas/obs/Incident.h - Anomaly-triggered forensic bundles *- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The forensics layer's capture-on-trigger half (DESIGN.md §16). When
/// an AnomalyDetector fires (or an operator sends `dump` over the
/// control socket), the IncidentWriter snapshots everything an engineer
/// needs into one timestamped directory:
///
///   incident-<seq>/
///     MANIFEST.txt     what fired, when, and every file's exact size
///     trace.json       flight-recorder drain, Chrome trace format
///     metrics.prom     registry snapshot, Prometheus exposition
///     metrics.json     same snapshot as JSON
///     decisions.jsonl  decision-record tail, one JSON object per line
///     tableg.txt       table-G digest (caller-rendered)
///     status.txt       statusz text at the moment of capture
///
/// Every file is written via writeFileAtomic, and the manifest is
/// written *last* with each file's byte count — so a bundle whose
/// manifest parses and whose sizes match is complete, and anything
/// torn by a crash mid-capture is rejected by validateBundle() rather
/// than trusted. Simultaneous triggers coalesce: one evaluate() pass
/// yields one bundle listing every rule that fired. Writes are
/// rate-limited (MinIntervalSec) and retention is bounded (the newest
/// MaxBundles survive; older directories are evicted oldest-first).
///
/// The last-gasp path reuses none of this machinery at crash time — a
/// signal handler can only write() pre-serialized bytes — so
/// renderLastGasp() builds the document ahead of need (the poll loop
/// refreshes it) and validateLastGasp() checks the header/end framing
/// the same way the manifest validator does.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_OBS_INCIDENT_H
#define ECAS_OBS_INCIDENT_H

#include "ecas/obs/Anomaly.h"
#include "ecas/obs/FlightRecorder.h"
#include "ecas/obs/Metrics.h"
#include "ecas/support/Error.h"
#include "ecas/support/ThreadAnnotations.h"

#include <string>
#include <vector>

namespace ecas::obs {

/// Where bundles go and how many may accumulate.
struct IncidentConfig {
  /// Root directory (created if missing); bundles are subdirectories
  /// named incident-<zero-padded sequence>.
  std::string Dir;
  /// Newest bundles kept; older ones are evicted after each write.
  unsigned MaxBundles = 8;
  /// Minimum host seconds between anomaly-triggered bundles. Manual
  /// dumps (Force) bypass this.
  double MinIntervalSec = 1.0;
};

/// What the writer snapshots. Flight and Metrics are borrowed and may
/// be null (the corresponding files are skipped); the digest and status
/// texts are pre-rendered by the caller, which keeps the obs layer
/// ignorant of core/service types.
struct IncidentInputs {
  FlightRecorder *Flight = nullptr;
  MetricsRegistry *Metrics = nullptr;
  std::string TableDigest;
  std::string ServiceStatus;
};

/// Thread-safe bundle writer (poll thread + control-socket dump may
/// race). Sequence numbering resumes past any bundles already on disk,
/// so retention ordering survives restarts.
class IncidentWriter {
public:
  explicit IncidentWriter(IncidentConfig Config);

  /// Captures one bundle for \p Triggers (empty means a manual dump).
  /// Returns the bundle directory, or Overloaded when rate-limited
  /// (\p Force bypasses the limit), or the first write failure.
  ErrorOr<std::string> write(const IncidentInputs &Inputs,
                             const std::vector<AnomalyTrigger> &Triggers,
                             double NowSec, bool Force = false);

  /// Bundles written by this writer instance.
  uint64_t bundlesWritten() const;

  const IncidentConfig &config() const { return Config; }

private:
  ErrorOr<std::string>
  writeLocked(const IncidentInputs &Inputs,
              const std::vector<AnomalyTrigger> &Triggers, double NowSec,
              bool Force) ECAS_REQUIRES(Mutex);
  void evictOldBundles() ECAS_REQUIRES(Mutex);

  IncidentConfig Config;
  mutable AnnotatedMutex Mutex{"Obs.Incidents"};
  uint64_t NextSeq ECAS_GUARDED_BY(Mutex) = 0;
  uint64_t Written ECAS_GUARDED_BY(Mutex) = 0;
  double LastWriteSec ECAS_GUARDED_BY(Mutex) = 0.0;
  bool Armed ECAS_GUARDED_BY(Mutex) = false;
};

/// Checks one bundle directory end to end: the manifest's header,
/// version, and end marker; every listed file's existence and exact
/// byte count; and that trace.json / metrics.prom actually parse.
/// Truncated or torn bundles come back Truncated/CorruptData — the
/// manifest-validator regression of the detector edge-case tests.
Status validateBundle(const std::string &Dir);

/// Bundle directories under \p Root, oldest first (lexicographic, which
/// the zero-padded sequence makes chronological).
std::vector<std::string> listBundles(const std::string &Root);

/// What renderLastGasp serializes.
struct LastGaspContext {
  double UptimeSec = 0.0;
  /// Pre-rendered statusz text ("" to omit).
  std::string ServiceStatus;
  /// Drained ahead of time by the caller (null skips the tail).
  FlightRecorder *Flight = nullptr;
  /// Decision-tail lines included in the document.
  size_t MaxDecisionLines = 64;
};

/// Pre-serializes the crash document: framing header, uptime, ring
/// accounting, the decision tail as JSON lines, the status text, and an
/// end marker. Called periodically off the hot path; the result is what
/// the fatal-signal handler (and the poll loop's on-disk mirror) emit
/// verbatim.
std::string renderLastGasp(const LastGaspContext &Ctx);

/// Validates last-gasp framing: version header first, end marker last.
/// Anything else is Truncated/VersionMismatch.
Status validateLastGasp(const std::string &Text);

} // namespace ecas::obs

#endif // ECAS_OBS_INCIDENT_H
