//===-- ecas/obs/Metrics.cpp - Counters, gauges, histograms --------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/obs/Metrics.h"

#include "ecas/support/Assert.h"
#include "ecas/support/Stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace ecas;
using namespace ecas::obs;

double HistogramSnapshot::quantile(double Q) const {
  return quantileFromBuckets(UpperBounds, Counts, Q);
}

void HistogramSnapshot::merge(const HistogramSnapshot &Other) {
  ECAS_CHECK(UpperBounds == Other.UpperBounds,
             "merging histograms with different bucket layouts");
  for (size_t I = 0; I != Counts.size(); ++I)
    Counts[I] += Other.Counts[I];
  if (Other.Count == 0)
    return;
  if (Count == 0) {
    Min = Other.Min;
    Max = Other.Max;
  } else {
    Min = std::min(Min, Other.Min);
    Max = std::max(Max, Other.Max);
  }
  Count += Other.Count;
  Sum += Other.Sum;
}

Histogram::Histogram(std::vector<double> Bounds)
    : UpperBounds(std::move(Bounds)),
      Buckets(new std::atomic<uint64_t>[UpperBounds.size() + 1]),
      Min(std::numeric_limits<double>::infinity()),
      Max(-std::numeric_limits<double>::infinity()) {
  ECAS_CHECK(std::is_sorted(UpperBounds.begin(), UpperBounds.end()),
             "histogram bounds must be ascending");
  for (double B : UpperBounds)
    ECAS_CHECK(std::isfinite(B), "histogram bounds must be finite");
  for (size_t I = 0; I != UpperBounds.size() + 1; ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}

void Histogram::record(double Value) {
  if (std::isnan(Value))
    return;
  // lower_bound, not upper_bound: a value equal to an edge belongs to
  // that edge's bucket (Prometheus le is less-or-equal).
  size_t Idx = std::lower_bound(UpperBounds.begin(), UpperBounds.end(), Value) -
               UpperBounds.begin();
  Buckets[Idx].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Value, std::memory_order_relaxed);
  double Seen = Min.load(std::memory_order_relaxed);
  while (Value < Seen &&
         !Min.compare_exchange_weak(Seen, Value, std::memory_order_relaxed)) {
  }
  Seen = Max.load(std::memory_order_relaxed);
  while (Value > Seen &&
         !Max.compare_exchange_weak(Seen, Value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot Snap;
  Snap.UpperBounds = UpperBounds;
  Snap.Counts.resize(UpperBounds.size() + 1);
  for (size_t I = 0; I != Snap.Counts.size(); ++I)
    Snap.Counts[I] = Buckets[I].load(std::memory_order_relaxed);
  Snap.Count = Count.load(std::memory_order_relaxed);
  Snap.Sum = Sum.load(std::memory_order_relaxed);
  if (Snap.Count == 0) {
    Snap.Min = Snap.Max = 0.0;
  } else {
    Snap.Min = Min.load(std::memory_order_relaxed);
    Snap.Max = Max.load(std::memory_order_relaxed);
  }
  return Snap;
}

std::vector<double> ecas::obs::logBuckets(double First, double Factor,
                                          unsigned Count) {
  ECAS_CHECK(First > 0.0 && Factor > 1.0, "log buckets need First>0, Factor>1");
  std::vector<double> Bounds;
  Bounds.reserve(Count);
  double Edge = First;
  for (unsigned I = 0; I != Count; ++I) {
    Bounds.push_back(Edge);
    Edge *= Factor;
  }
  return Bounds;
}

std::vector<double> ecas::obs::linearBuckets(double Start, double Width,
                                             unsigned Count) {
  ECAS_CHECK(Width > 0.0, "linear buckets need a positive width");
  std::vector<double> Bounds;
  Bounds.reserve(Count);
  for (unsigned I = 0; I != Count; ++I)
    Bounds.push_back(Start + Width * static_cast<double>(I + 1));
  return Bounds;
}

const char *ecas::obs::metricKindName(MetricKind Kind) {
  switch (Kind) {
  case MetricKind::Counter:
    return "counter";
  case MetricKind::Gauge:
    return "gauge";
  case MetricKind::Histogram:
    return "histogram";
  }
  return "counter";
}

const MetricSample *MetricsSnapshot::find(const std::string &Name) const {
  for (const MetricSample &S : Samples)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

const MetricSample *MetricsSnapshot::find(const std::string &Name,
                                          const MetricLabels &Labels) const {
  for (const MetricSample &S : Samples)
    if (S.Name == Name && S.Labels == Labels)
      return &S;
  return nullptr;
}

double MetricsSnapshot::total(const std::string &Name) const {
  double Sum = 0.0;
  for (const MetricSample &S : Samples)
    if (S.Name == Name && S.Kind != MetricKind::Histogram)
      Sum += S.Value;
  return Sum;
}

Counter &MetricsRegistry::counter(const char *Name, MetricLabels Labels,
                                  const char *Help) {
  Instrument &I =
      obtain(Name, std::move(Labels), Help, MetricKind::Counter, nullptr);
  return *I.C;
}

Gauge &MetricsRegistry::gauge(const char *Name, MetricLabels Labels,
                              const char *Help) {
  Instrument &I =
      obtain(Name, std::move(Labels), Help, MetricKind::Gauge, nullptr);
  return *I.G;
}

Histogram &MetricsRegistry::histogram(const char *Name,
                                      std::vector<double> Bounds,
                                      MetricLabels Labels, const char *Help) {
  Instrument &I =
      obtain(Name, std::move(Labels), Help, MetricKind::Histogram, &Bounds);
  return *I.H;
}

MetricsRegistry::Instrument &
MetricsRegistry::obtain(const char *Name, MetricLabels &&Labels,
                        const char *Help, MetricKind Kind,
                        std::vector<double> *Bounds) {
  LockGuard Lock(Mutex);
  for (const std::unique_ptr<Instrument> &I : Instruments) {
    if (I->Name == Name && I->Labels == Labels) {
      ECAS_CHECK(I->Kind == Kind,
                 "metric re-registered with a different instrument kind");
      return *I;
    }
  }
  auto Fresh = std::make_unique<Instrument>();
  Fresh->Name = Name;
  Fresh->Labels = std::move(Labels);
  Fresh->Help = Help;
  Fresh->Kind = Kind;
  switch (Kind) {
  case MetricKind::Counter:
    Fresh->C = std::make_unique<Counter>();
    break;
  case MetricKind::Gauge:
    Fresh->G = std::make_unique<Gauge>();
    break;
  case MetricKind::Histogram:
    ECAS_CHECK(Bounds, "histogram registration requires bucket bounds");
    Fresh->H = std::make_unique<Histogram>(std::move(*Bounds));
    break;
  }
  Instruments.push_back(std::move(Fresh));
  return *Instruments.back();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot Snap;
  LockGuard Lock(Mutex);
  Snap.Samples.reserve(Instruments.size());
  for (const std::unique_ptr<Instrument> &I : Instruments) {
    MetricSample S;
    S.Name = I->Name;
    S.Labels = I->Labels;
    S.Help = I->Help;
    S.Kind = I->Kind;
    switch (I->Kind) {
    case MetricKind::Counter:
      S.Value = I->C->value();
      break;
    case MetricKind::Gauge:
      S.Value = I->G->value();
      break;
    case MetricKind::Histogram:
      S.Hist = I->H->snapshot();
      break;
    }
    Snap.Samples.push_back(std::move(S));
  }
  std::sort(Snap.Samples.begin(), Snap.Samples.end(),
            [](const MetricSample &A, const MetricSample &B) {
              if (A.Name != B.Name)
                return A.Name < B.Name;
              return A.Labels < B.Labels;
            });
  return Snap;
}

size_t MetricsRegistry::size() const {
  LockGuard Lock(Mutex);
  return Instruments.size();
}
