//===-- ecas/obs/MetricsExport.h - Snapshot exposition ---------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a MetricsSnapshot in three forms: Prometheus text exposition
/// (the service-scrape format, with cumulative `_bucket{le=...}` rows,
/// `_sum`/`_count`, and label-value escaping), a JSON snapshot (one
/// self-contained document for offline diffing), and a human-readable
/// report with p50/p90/p99/max summaries (what `ecas-cli stats`
/// prints). parsePrometheusText() inverts the first form so `stats` can
/// re-render a scraped file and tests can assert round-trips.
///
/// Snapshot files are rewritten atomically (tmp + rename, the
/// HistorySnapshot idiom) so a scraper never observes a torn file.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_OBS_METRICSEXPORT_H
#define ECAS_OBS_METRICSEXPORT_H

#include "ecas/obs/Metrics.h"
#include "ecas/support/Error.h"

#include <string>

namespace ecas::obs {

/// Prometheus text exposition format, version 0.0.4: `# HELP` / `# TYPE`
/// preambles, cumulative `_bucket{le="..."}` rows ending in
/// `le="+Inf"`, `_sum` and `_count` per histogram. Label values escape
/// backslash, double quote, and newline.
std::string renderPrometheus(const MetricsSnapshot &Snap);

/// JSON document: `{"metrics": [{"name", "labels", "kind", ...}]}`,
/// histograms carrying bounds/counts/count/sum/min/max.
std::string renderMetricsJson(const MetricsSnapshot &Snap);

/// Human-readable report: counters/gauges as aligned name/value rows,
/// histograms with count/mean/p50/p90/p99/max (bucket-interpolated via
/// the shared support/Stats quantile helper).
std::string renderMetricsReport(const MetricsSnapshot &Snap);

/// Parses Prometheus text exposition back into a snapshot, reassembling
/// `_bucket`/`_sum`/`_count` families into histograms and unescaping
/// label values. Rejects malformed lines with ParseError rather than
/// guessing.
ErrorOr<MetricsSnapshot> parsePrometheusText(const std::string &Text);

/// Writes \p Text to \p Path via tmp-file + rename so readers only ever
/// see a complete document (the serve-loop periodic rewrite relies on
/// this).
Status writeFileAtomic(const std::string &Path, const std::string &Text);

} // namespace ecas::obs

#endif // ECAS_OBS_METRICSEXPORT_H
