//===-- ecas/obs/FlightRecorder.h - Always-on black-box ring ---*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The forensics layer's always-on half (DESIGN.md §16). Where a
/// TraceRecorder keeps *everything* and grows until drained — right for
/// a bounded experiment, wrong for a service that runs for weeks — the
/// FlightRecorder keeps only the recent past: a fixed-capacity
/// per-thread ring of trace events plus one shared ring of
/// DecisionRecords, both overwriting their oldest entries once full.
/// Drain it at any moment (an anomaly trigger, a `dump` control
/// command, a crash handler's pre-serialized tail) and you get the last
/// few thousand things the scheduler did, in time order, however long
/// the process has been up.
///
/// The recording contract matches Trace/Metrics/DecisionLog: a null
/// FlightRecorder pointer in EasConfig no-ops every hook and scheduling
/// is bit-identical. The hot-path contract is stricter than the
/// TraceRecorder's: FlightEvent is strictly POD (no Detail string), the
/// per-thread ring storage is allocated once at a thread's first event,
/// and a steady-state record is a leaf-mutex lock plus a slot copy —
/// zero heap traffic, proven by HotPathTest's armed-recorder regression
/// and bench/micro_obs's overhead budget.
///
/// Locking: "Obs.FlightRegistry" guards the ring list (taken once per
/// (thread, recorder) pair and at drain); each ring has its own leaf
/// "Obs.FlightRing" mutex, uncontended except while a drain copies the
/// ring out. The decision ring uses the same design as DecisionLog
/// under "Obs.FlightDecisions".
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_OBS_FLIGHTRECORDER_H
#define ECAS_OBS_FLIGHTRECORDER_H

#include "ecas/obs/DecisionLog.h"
#include "ecas/obs/Trace.h"
#include "ecas/support/ThreadAnnotations.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace ecas::obs {

/// One black-box event. Strictly POD: Category and Name must be string
/// literals (the ring stores the pointers), and unlike TraceEvent there
/// is no Detail payload — a free-form string would put an allocation on
/// the armed hot path.
struct FlightEvent {
  EventKind Kind = EventKind::Instant;
  const char *Category = "";
  const char *Name = "";
  /// Host steady-clock seconds (TraceRecorder::hostSeconds).
  double HostSeconds = 0.0;
  /// Counter delta, or free-form numeric payload for instants.
  double Value = 0.0;
  /// Dense per-recorder id of the recording thread.
  uint32_t ThreadId = 0;
  /// Global record order; gaps in a drained snapshot reveal overwritten
  /// history, exactly like DecisionRecord::Sequence.
  uint64_t Seq = 0;
};

/// Everything the recorder still holds, in sink-ready form: the event
/// tail as a TraceLog (renderable by ChromeTrace like any full trace)
/// plus the decision-record tail, with drop counters quantifying how
/// much history the rings have already overwritten.
struct FlightSnapshot {
  TraceLog Trace;
  std::vector<DecisionRecord> Decisions;
  uint64_t EventsRecorded = 0;
  uint64_t EventsDropped = 0;
  uint64_t DecisionsRecorded = 0;
  uint64_t DecisionsDropped = 0;
};

/// The always-on flight recorder. Construction is cheap; arm one per
/// service via EasConfig::Flight (and ServiceConfig::Flight for the
/// front end's shed/miss events). All record methods are thread-safe.
class FlightRecorder {
public:
  /// \p EventsPerThread is each thread's ring capacity; \p
  /// DecisionCapacity bounds the shared decision ring. Both are clamped
  /// to at least 1.
  explicit FlightRecorder(size_t EventsPerThread = 4096,
                          size_t DecisionCapacity = 512);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder &) = delete;
  FlightRecorder &operator=(const FlightRecorder &) = delete;

  /// Records a point event with an optional numeric payload.
  void instant(const char *Category, const char *Name, double Value = 0.0);

  /// Adds \p Delta to the monotonic counter \p Name (folded into
  /// TraceLog::Counters at drain, like the TraceRecorder's).
  void count(const char *Name, double Delta = 1.0);

  /// Appends one decision record to the shared ring, stamping its
  /// Sequence. POD copy under a leaf mutex; no allocation.
  void recordDecision(const DecisionRecord &Record);

  /// Snapshots the surviving tail: events merged across threads in
  /// (HostSeconds, Seq) order with counter deltas folded into totals,
  /// decisions oldest-first. Safe while other threads record; each ring
  /// contributes what its writer has published.
  FlightSnapshot drain() const;

  /// Events recorded over the recorder's lifetime (not just resident).
  uint64_t eventsRecorded() const {
    return NextSeq.load(std::memory_order_relaxed);
  }

  size_t eventCapacityPerThread() const { return EventCap; }
  size_t decisionCapacity() const { return DecisionCap; }

private:
  struct ThreadRing;

  /// The calling thread's ring, registering one on first use (the only
  /// allocation a recording thread ever performs).
  ThreadRing &localRing();
  void record(EventKind Kind, const char *Category, const char *Name,
              double Value);

  /// Never-reused identity; thread-local caches key on it so a stale
  /// entry for a destroyed recorder cannot alias a new one at the same
  /// address (the TraceRecorder idiom).
  const uint64_t RecorderId;
  const double Epoch;
  const size_t EventCap;
  const size_t DecisionCap;

  /// Leaf-ish lock: guards the ring list; the only lock ever taken
  /// while holding it is a ring's own "Obs.FlightRing" during drain.
  mutable AnnotatedMutex RegistryMutex{"Obs.FlightRegistry"};
  std::vector<std::unique_ptr<ThreadRing>> Rings
      ECAS_GUARDED_BY(RegistryMutex);

  std::atomic<uint64_t> NextSeq{0};

  mutable AnnotatedMutex DecisionMutex{"Obs.FlightDecisions"};
  std::vector<DecisionRecord> DecisionRing ECAS_GUARDED_BY(DecisionMutex);
  uint64_t NextDecision ECAS_GUARDED_BY(DecisionMutex) = 0;
};

} // namespace ecas::obs

#endif // ECAS_OBS_FLIGHTRECORDER_H
