//===-- ecas/obs/DecisionLog.h - Per-decision audit records ----*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The audit half of model-fidelity telemetry: where the histograms in
/// obs/Metrics.h answer "how wrong is the model on average", the
/// DecisionLog answers "what exactly did the scheduler decide for
/// invocation N and why". Each EasScheduler::execute appends one
/// DecisionRecord — kernel id, workload class, chosen alpha, the
/// predicted T/P/metric that justified it, the measured T/E that
/// followed, and whether the choice came from a table-G hit or a fresh
/// profile — into a fixed-capacity in-memory ring (old records are
/// overwritten, a service never grows unbounded). DecisionLogSink
/// renders a ring snapshot as CSV or JSON-lines for offline diffing,
/// mirroring the CsvTraceSink / ChromeTrace split in the trace layer.
///
/// Like the registry, a null DecisionLog pointer in EasConfig no-ops
/// every append and scheduling stays bit-identical.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_OBS_DECISIONLOG_H
#define ECAS_OBS_DECISIONLOG_H

#include "ecas/support/Error.h"
#include "ecas/support/ThreadAnnotations.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ecas::obs {

/// Everything the scheduler knew (and then learned) about one
/// invocation. Prediction fields are meaningful only when
/// HasPrediction; measured fields only when the run completed
/// (!Cancelled).
struct DecisionRecord {
  /// Monotonic append index (survives ring wrap, so gaps reveal
  /// overwritten history).
  uint64_t Sequence = 0;
  uint64_t KernelId = 0;
  /// WorkloadClass::index(), or -1 when never classified.
  int ClassIndex = -1;
  double Alpha = 0.0;
  /// P-state half of the chosen operating point; 0 (full speed) when
  /// P-states are off or the decision predates the DVFS axis.
  unsigned PState = 0;
  bool HasPrediction = false;
  double PredictedSeconds = 0.0;
  double PredictedWatts = 0.0;
  /// Objective value (EDP/ED^2P/energy...) the alpha search minimised.
  double PredictedMetric = 0.0;
  double MeasuredSeconds = 0.0;
  double MeasuredJoules = 0.0;
  bool TableHit = false;
  bool Profiled = false;
  bool CpuOnlyFastPath = false;
  bool GpuQuarantined = false;
  bool Cancelled = false;
};

/// Thread-safe fixed-capacity ring of DecisionRecords. append() takes
/// one leaf mutex ("Obs.DecisionLog"); the scheduler calls it once per
/// invocation, after dispatch, outside every scheduler lock.
class DecisionLog {
public:
  explicit DecisionLog(size_t Capacity = 1024);

  /// Stamps Sequence and stores \p Record, overwriting the oldest entry
  /// once the ring is full.
  void append(DecisionRecord Record);

  /// Records still resident, oldest first.
  std::vector<DecisionRecord> snapshot() const;

  /// Total appends over the log's lifetime (>= snapshot().size()).
  uint64_t appended() const;

  size_t capacity() const { return Cap; }

private:
  const size_t Cap;
  /// Leaf lock: nothing else is ever acquired while it is held.
  mutable AnnotatedMutex Mutex{"Obs.DecisionLog"};
  std::vector<DecisionRecord> Ring ECAS_GUARDED_BY(Mutex);
  uint64_t Next ECAS_GUARDED_BY(Mutex) = 0;
};

/// Renders ring snapshots for offline inspection.
class DecisionLogSink {
public:
  /// CSV with a header row; one line per record, columns matching the
  /// DecisionRecord fields.
  static std::string renderCsv(const std::vector<DecisionRecord> &Records);

  /// JSON-lines: one self-contained object per record.
  static std::string
  renderJsonLines(const std::vector<DecisionRecord> &Records);

  /// Writes \p Log's snapshot to \p Path (atomically); format picked by
  /// extension — ".csv" renders CSV, anything else JSON-lines.
  static Status write(const DecisionLog &Log, const std::string &Path);
};

} // namespace ecas::obs

#endif // ECAS_OBS_DECISIONLOG_H
