//===-- ecas/obs/Sinks.h - CSV and summary trace sinks ---------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The render half of the observability layer (the Chrome trace-event
/// exporter lives in obs/ChromeTrace.h): a CSV exporter built on
/// support/Csv for spreadsheet-side analysis, a human-readable summary
/// (per-span tallies plus counter totals) for terminals, and the
/// explicit NullSink that discards everything — the do-nothing
/// TraceSink used where an API wants a sink object rather than a null
/// recorder.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_OBS_SINKS_H
#define ECAS_OBS_SINKS_H

#include "ecas/obs/Trace.h"
#include "ecas/support/Csv.h"

namespace ecas::obs {

/// Discards the log. Exists so "no observability" is expressible as a
/// sink, not only as a null recorder.
class NullSink : public TraceSink {
public:
  Status consume(const TraceLog &Log) override;
  uint64_t consumed() const { return Consumed; }

private:
  uint64_t Consumed = 0;
};

/// Renders every event as one CSV row
/// (kind,category,name,host_sec,virtual_sec,value,thread,detail) with a
/// trailing counter-total section, reusing support/Csv's quoting.
class CsvTraceSink : public TraceSink {
public:
  /// \p Path may be empty: the table is then only kept in memory
  /// (render() / table()).
  explicit CsvTraceSink(std::string Path = {});

  Status consume(const TraceLog &Log) override;

  const CsvTable &table() const { return Table; }
  std::string render() const { return Table.render(); }

private:
  std::string Path;
  CsvTable Table;
};

/// Per-span-name durations (count, total host seconds), instant tallies,
/// and counter totals as a fixed-width text table.
class SummarySink : public TraceSink {
public:
  Status consume(const TraceLog &Log) override;

  /// The rendered report ("" before consume()).
  const std::string &text() const { return Text; }

private:
  std::string Text;
};

} // namespace ecas::obs

#endif // ECAS_OBS_SINKS_H
