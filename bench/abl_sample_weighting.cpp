//===-- bench/abl_sample_weighting.cpp - Profiling-strategy ablation ------===//
//
// Part of the ecas project, under the MIT License.
//
// Fig. 7 step 13 repeats profiling for half of the iterations ([12]'s
// size-based strategy) and step 26 accumulates alpha with sample
// weighting. This ablation varies the profiled fraction, showing the
// accuracy/overhead trade: tiny fractions mis-estimate irregular
// kernels, huge fractions burn time in chunked GPU launches.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"
#include "ecas/support/Stats.h"

#include <cstdio>

using namespace ecas;

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Ablation: profiled fraction of first-seen invocations (desktop, "
      "EDP)",
      "paper profiles half the iterations — the size-based strategy of "
      "[12]");

  PlatformSpec Spec = haswellDesktop();
  PowerCurveSet Curves = Characterizer(Spec).characterize();
  std::vector<Workload> Suite = desktopSuite(bench::configFromFlags(Args));
  ExecutionSession Session(Spec);
  Metric Objective = Metric::edp();

  std::printf("%10s %14s %14s\n", "fraction", "mean EAS eff",
              "min EAS eff");
  for (double Fraction : {0.02, 0.1, 0.25, 0.5, 0.75, 0.95}) {
    EasConfig Config;
    Config.ProfileFraction = Fraction;
    RunningStats Eff;
    for (const Workload &W : Suite) {
      SessionReport Oracle = Session.runOracle(W.Trace, Objective);
      SessionReport Eas =
          Session.runEas(W.Trace, Curves, Objective, Config);
      Eff.add(Oracle.MetricValue / Eas.MetricValue);
    }
    std::printf("%10.2f %13.1f%% %13.1f%%%s\n", Fraction, 100 * Eff.mean(),
                100 * Eff.min(),
                Fraction == 0.5 ? "   <- paper's strategy" : "");
  }
  Args.reportUnknown();
  return 0;
}
