//===-- bench/fig11_tablet_edp.cpp - Reproduce Fig. 11 --------------------===//
//
// Part of the ecas project, under the MIT License.
//
// Fig. 11: relative EDP efficiency versus the Oracle on the Bay Trail
// tablet (the seven workloads that build on the 32-bit target). The
// paper reports EAS at 93.2% — 4.4% better than PERF, 19.6% better than
// GPU-alone, 85.9% better than CPU-alone.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"

using namespace ecas;

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Figure 11: relative EDP efficiency vs Oracle (Bay Trail tablet)",
      "EAS 93.2% of Oracle; better than PERF/GPU/CPU by 4.4%/19.6%/85.9%");

  PlatformSpec Spec = bayTrailTablet();
  PowerCurveSet Curves = Characterizer(Spec).characterize();
  std::vector<Workload> Suite = tabletSuite(bench::configFromFlags(Args));
  std::vector<bench::SchemeRow> Rows =
      bench::runComparison(Spec, Suite, Curves, Metric::edp());
  bench::printComparison(Rows);
  bench::maybeWriteCsv(Args, Rows);
  bench::maybeWriteBenchMetrics(Args, "fig11-tablet-edp", Metric::edp(), Rows);
  Args.reportUnknown();
  return 0;
}
