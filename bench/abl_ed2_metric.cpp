//===-- bench/abl_ed2_metric.cpp - ED^2 metric extension ------------------===//
//
// Part of the ecas project, under the MIT License.
//
// Section 1 introduces ED^2 = E*T^2 for deadline-sensitive deployments
// but the evaluation covers E and EDP only. This extension runs all
// three metrics through the full comparison, showing the optimal alpha
// drifting toward the performance point as the time exponent grows.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"
#include "ecas/support/Stats.h"

#include <cstdio>

using namespace ecas;

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Extension: optimizing ED^2 in addition to E and EDP (desktop)",
      "the paper defines ED^2 but does not evaluate it; the optimal "
      "offload drifts toward alpha_PERF as the time exponent grows");

  PlatformSpec Spec = haswellDesktop();
  PowerCurveSet Curves = Characterizer(Spec).characterize();
  std::vector<Workload> Suite = desktopSuite(bench::configFromFlags(Args));
  ExecutionSession Session(Spec);

  for (const Metric &Objective :
       {Metric::energy(), Metric::edp(), Metric::ed2p()}) {
    RunningStats Eff, OracleAlpha;
    for (const Workload &W : Suite) {
      SessionReport Oracle = Session.runOracle(W.Trace, Objective);
      SessionReport Eas = Session.runEas(W.Trace, Curves, Objective);
      Eff.add(Oracle.MetricValue / Eas.MetricValue);
      OracleAlpha.add(Oracle.MeanAlpha);
    }
    std::printf("%-8s mean EAS eff %5.1f%%  min %5.1f%%  mean oracle "
                "alpha %.2f\n",
                Objective.name().c_str(), 100 * Eff.mean(),
                100 * Eff.min(), OracleAlpha.mean());
  }
  Args.reportUnknown();
  return 0;
}
