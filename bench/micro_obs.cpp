//===-- bench/micro_obs.cpp - Flight-recorder overhead budget --------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Prices the always-on forensics of DESIGN.md §16: the same warmed
// table-hit decision micro_decision measures, run twice — recorder
// disarmed (null FlightRecorder pointer, the bit-identical no-op path)
// and armed (every decision lands in the rings) — plus the latency of
// capturing one full incident bundle. The committed BENCH_obs.json at
// the repo root pins the numbers, and the run FAILS if the armed
// overhead exceeds 15% of the table-hit p50 that BENCH_decision.json
// records: "always-on" is only defensible while it is nearly free.
//
// Links support/AllocGuard.cpp so the armed loop also proves
// allocations_per_decision stays 0 with the recorder attached.
//
// Usage: micro_obs [output.json] [baseline_hit_p50_ns]
//        (defaults: BENCH_obs.json, 589 — BENCH_decision.json's p50)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/core/EasScheduler.h"
#include "ecas/hw/Presets.h"
#include "ecas/obs/FlightRecorder.h"
#include "ecas/obs/Incident.h"
#include "ecas/obs/Metrics.h"
#include "ecas/power/MicroBenchmarks.h"
#include "ecas/support/AllocGuard.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

using namespace ecas;

namespace {

using Clock = std::chrono::steady_clock;

double nsSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - Start)
      .count();
}

struct LatencyStats {
  double P50 = 0.0;
  double P90 = 0.0;
  double P99 = 0.0;
  double Mean = 0.0;
};

LatencyStats summarize(std::vector<double> &SamplesNs) {
  LatencyStats Stats;
  if (SamplesNs.empty())
    return Stats;
  std::sort(SamplesNs.begin(), SamplesNs.end());
  auto Pct = [&](double P) {
    size_t Idx = static_cast<size_t>(P * (SamplesNs.size() - 1));
    return SamplesNs[Idx];
  };
  Stats.P50 = Pct(0.50);
  Stats.P90 = Pct(0.90);
  Stats.P99 = Pct(0.99);
  double Sum = 0.0;
  for (double S : SamplesNs)
    Sum += S;
  Stats.Mean = Sum / static_cast<double>(SamplesNs.size());
  return Stats;
}

/// One warmed scheduler (recorder optionally armed) measured over the
/// same table-hit loop micro_decision uses. Returns latency stats and
/// the allocation count observed during the measured window.
LatencyStats measureDecisions(obs::FlightRecorder *Flight, int Iterations,
                              uint64_t &AllocsOut) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  static PowerCurveSet Curves = Characterizer(haswellDesktop()).characterize();
  EasConfig Config;
  Config.Flight = Flight;
  EasScheduler Scheduler(Curves, Metric::edp(), Config);
  KernelDesc Kernel = computeBoundMicroKernel();

  constexpr double N = 2e6;
  if (!Scheduler.execute(Proc, Kernel, N).Profiled) {
    std::fprintf(stderr, "error: first invocation did not profile\n");
    std::exit(1);
  }
  for (int I = 0; I != 16; ++I) {
    if (!Scheduler.execute(Proc, Kernel, N).TableHit) {
      std::fprintf(stderr, "error: warmup invocation missed table G\n");
      std::exit(1);
    }
  }

  std::vector<double> SamplesNs;
  SamplesNs.reserve(static_cast<size_t>(Iterations));
  AllocTally Tally;
  for (int I = 0; I != Iterations; ++I) {
    Clock::time_point T0 = Clock::now();
    auto Outcome = Scheduler.execute(Proc, Kernel, N);
    SamplesNs.push_back(nsSince(T0));
    if (!Outcome.TableHit) {
      std::fprintf(stderr, "error: measured invocation missed table G\n");
      std::exit(1);
    }
  }
  AllocsOut = Tally.allocations();
  return summarize(SamplesNs);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPath = Argc > 1 ? Argv[1] : "BENCH_obs.json";
  double BaselineHitP50Ns = Argc > 2 ? std::atof(Argv[2]) : 589.0;
  bench::printBanner(
      "micro_obs: flight-recorder overhead + incident-dump latency",
      "always-on forensics must cost < 15% of a table-hit decision");

  constexpr int Iterations = 2000;
  uint64_t NullAllocs = 0;
  uint64_t ArmedAllocs = 0;
  LatencyStats Null = measureDecisions(nullptr, Iterations, NullAllocs);
  obs::FlightRecorder Flight;
  LatencyStats Armed = measureDecisions(&Flight, Iterations, ArmedAllocs);
  obs::FlightSnapshot Snap = Flight.drain();
  if (Snap.DecisionsRecorded == 0) {
    std::fprintf(stderr,
                 "error: armed run recorded nothing; overhead is vacuous\n");
    return 1;
  }

  double OverheadNs = Armed.P50 - Null.P50;
  double BudgetNs = 0.15 * BaselineHitP50Ns;

  // Incident capture: drain + render + atomic writes of a full bundle
  // (manual dumps bypass the rate limit, exactly like a control-socket
  // `dump`). This is off-hot-path latency, reported for operators who
  // will trigger it against a live service.
  obs::MetricsRegistry Registry;
  Registry.counter("bench_obs_marker").add(1.0);
  obs::IncidentConfig IncidentCfg;
  IncidentCfg.Dir = "/tmp/ecas-bench-obs-incidents";
  IncidentCfg.MaxBundles = 2;
  obs::IncidentWriter Writer(IncidentCfg);
  obs::IncidentInputs Inputs;
  Inputs.Flight = &Flight;
  Inputs.Metrics = &Registry;
  Inputs.TableDigest = "tableg entries=1\n";
  Inputs.ServiceStatus = "ecas-statusz v1\nuptime_sec 0.0\nend\n";
  constexpr int DumpIterations = 20;
  std::vector<double> DumpNs;
  DumpNs.reserve(DumpIterations);
  for (int I = 0; I != DumpIterations; ++I) {
    Clock::time_point T0 = Clock::now();
    ErrorOr<std::string> Bundle =
        Writer.write(Inputs, {}, static_cast<double>(I), /*Force=*/true);
    DumpNs.push_back(nsSince(T0));
    if (!Bundle.ok()) {
      std::fprintf(stderr, "error: incident dump failed: %s\n",
                   Bundle.status().toString().c_str());
      return 1;
    }
  }
  LatencyStats Dump = summarize(DumpNs);

  std::printf("disarmed decision: p50 %.0f ns  p90 %.0f ns  mean %.0f ns\n",
              Null.P50, Null.P90, Null.Mean);
  std::printf("armed decision:    p50 %.0f ns  p90 %.0f ns  mean %.0f ns  "
              "(%llu events, %llu decisions recorded)\n",
              Armed.P50, Armed.P90, Armed.Mean,
              static_cast<unsigned long long>(Snap.EventsRecorded),
              static_cast<unsigned long long>(Snap.DecisionsRecorded));
  std::printf("recorder overhead: %.0f ns at p50 (budget %.0f ns = 15%% of "
              "baseline %.0f ns)\n",
              OverheadNs, BudgetNs, BaselineHitP50Ns);
  std::printf("incident dump:     p50 %.0f ns  p99 %.0f ns  "
              "(%d full bundles)\n",
              Dump.P50, Dump.P99, DumpIterations);

  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out,
               "{\n"
               "  \"bench\": \"obs\",\n"
               "  \"platform\": \"haswell-desktop\",\n"
               "  \"invocations\": %d,\n"
               "  \"disarmed_decision_ns\": "
               "{\"p50\": %.0f, \"p90\": %.0f, \"p99\": %.0f, "
               "\"mean\": %.0f},\n"
               "  \"armed_decision_ns\": "
               "{\"p50\": %.0f, \"p90\": %.0f, \"p99\": %.0f, "
               "\"mean\": %.0f},\n"
               "  \"recorder_overhead_p50_ns\": %.0f,\n"
               "  \"overhead_budget_ns\": %.0f,\n"
               "  \"baseline_table_hit_p50_ns\": %.0f,\n"
               "  \"incident_dump_ns\": {\"p50\": %.0f, \"p99\": %.0f},\n"
               "  \"allocations_per_armed_decision\": %.0f\n"
               "}\n",
               Iterations, Null.P50, Null.P90, Null.P99, Null.Mean,
               Armed.P50, Armed.P90, Armed.P99, Armed.Mean, OverheadNs,
               BudgetNs, BaselineHitP50Ns, Dump.P50, Dump.P99,
               static_cast<double>(ArmedAllocs) / Iterations);
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath.c_str());

  if (ArmedAllocs != 0) {
    std::fprintf(stderr,
                 "FAIL: armed decisions allocated (%llu over %d)\n",
                 static_cast<unsigned long long>(ArmedAllocs), Iterations);
    return 1;
  }
  if (OverheadNs > BudgetNs) {
    std::fprintf(stderr,
                 "FAIL: recorder overhead %.0f ns exceeds the %.0f ns "
                 "budget\n",
                 OverheadNs, BudgetNs);
    return 1;
  }
  return 0;
}
