//===-- bench/abl_thresholds.cpp - Classifier-threshold ablation ----------===//
//
// Part of the ecas project, under the MIT License.
//
// Section 5: workloads are memory-bound when misses/load-store > 0.33
// and short when the remaining execution is < 100 ms; "both these
// thresholds were sufficient for both platforms". This sweeps both and
// reports EAS EDP efficiency, showing the flat region around the paper's
// choices.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"
#include "ecas/support/Stats.h"

#include <cstdio>

using namespace ecas;

static double meanEff(const ExecutionSession &Session,
                      const std::vector<Workload> &Suite,
                      const PowerCurveSet &Curves, const EasConfig &Config) {
  Metric Objective = Metric::edp();
  RunningStats Eff;
  for (const Workload &W : Suite) {
    SessionReport Oracle = Session.runOracle(W.Trace, Objective);
    SessionReport Eas = Session.runEas(W.Trace, Curves, Objective, Config);
    Eff.add(Oracle.MetricValue / Eas.MetricValue);
  }
  return Eff.mean();
}

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Ablation: classification thresholds (desktop, EDP)",
      "paper: memory-bound above 0.33 misses/load-store; short below "
      "100 ms");

  PlatformSpec Spec = haswellDesktop();
  PowerCurveSet Curves = Characterizer(Spec).characterize();
  std::vector<Workload> Suite = desktopSuite(bench::configFromFlags(Args));
  ExecutionSession Session(Spec);

  std::printf("memory-intensity threshold sweep (short = 100 ms):\n");
  std::printf("%10s %14s\n", "threshold", "mean EAS eff");
  for (double T : {0.05, 0.15, 0.25, 0.33, 0.45, 0.60, 0.90}) {
    EasConfig Config;
    Config.Thresholds.MemoryIntensity = T;
    std::printf("%10.2f %13.1f%%\n", T,
                100 * meanEff(Session, Suite, Curves, Config));
  }

  std::printf("\nshort/long threshold sweep (memory = 0.33):\n");
  std::printf("%10s %14s\n", "seconds", "mean EAS eff");
  for (double T : {0.005, 0.02, 0.05, 0.1, 0.3, 1.0, 5.0}) {
    EasConfig Config;
    Config.Thresholds.ShortSeconds = T;
    std::printf("%10.3f %13.1f%%\n", T,
                100 * meanEff(Session, Suite, Curves, Config));
  }
  Args.reportUnknown();
  return 0;
}
