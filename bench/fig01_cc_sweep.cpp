//===-- bench/fig01_cc_sweep.cpp - Reproduce Fig. 1 -----------------------===//
//
// Part of the ecas project, under the MIT License.
//
// Fig. 1: energy use and runtime of Connected Components on the desktop
// while the GPU offload percentage sweeps 0..100. The paper observes
// minimum energy at ~90% offload and best performance at ~60%.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"
#include "ecas/support/Csv.h"
#include "ecas/support/Format.h"
#include "ecas/workloads/GraphWorkloads.h"

#include <algorithm>
#include <cstdio>

using namespace ecas;

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Figure 1: CC energy & runtime vs GPU offload percent (desktop)",
      "minimum energy near 90% GPU offload; best performance near 60%");

  PlatformSpec Spec = haswellDesktop();
  Workload Cc = makeCcWorkload(bench::configFromFlags(Args));
  ExecutionSession Session(Spec);
  double Step = Args.getDouble("step", 0.1);

  struct Point {
    double Alpha, Seconds, Joules;
  };
  std::vector<Point> Points;
  for (double Alpha = 0.0; Alpha <= 1.0 + 1e-9; Alpha += Step) {
    SessionReport R = Session.runFixedAlpha(Cc.Trace, std::min(Alpha, 1.0),
                                            Metric::energy());
    Points.push_back({std::min(Alpha, 1.0), R.Seconds, R.Joules});
  }

  double MaxSeconds = 0, MaxJoules = 0;
  double BestPerfAlpha = 0, BestPerfSeconds = 1e30;
  double BestEnergyAlpha = 0, BestEnergyJoules = 1e30;
  for (const Point &P : Points) {
    MaxSeconds = std::max(MaxSeconds, P.Seconds);
    MaxJoules = std::max(MaxJoules, P.Joules);
    if (P.Seconds < BestPerfSeconds) {
      BestPerfSeconds = P.Seconds;
      BestPerfAlpha = P.Alpha;
    }
    if (P.Joules < BestEnergyJoules) {
      BestEnergyJoules = P.Joules;
      BestEnergyAlpha = P.Alpha;
    }
  }

  std::printf("%6s %10s %10s  %s\n", "gpu%", "time", "energy",
              "time bar (#) over energy bar (=)");
  for (const Point &P : Points) {
    std::string EnergyBar = bench::bar(P.Joules, MaxJoules, 30);
    for (char &C : EnergyBar)
      if (C == '#')
        C = '=';
    std::printf("%5.0f%% %10s %10s  |%s|\n", 100 * P.Alpha,
                formatDuration(P.Seconds).c_str(),
                formatEnergy(P.Joules).c_str(),
                bench::bar(P.Seconds, MaxSeconds, 30).c_str());
    std::printf("%30s|%s|\n", "", EnergyBar.c_str());
  }
  std::printf("\nbest performance at %.0f%% GPU offload (paper: 60%%)\n",
              100 * BestPerfAlpha);
  std::printf("minimum energy   at %.0f%% GPU offload (paper: 90%%)\n",
              100 * BestEnergyAlpha);

  std::string Path = Args.getString("csv", "");
  if (!Path.empty()) {
    CsvTable Table;
    Table.setHeader({"gpu_percent", "seconds", "joules"});
    for (const Point &P : Points)
      Table.addNumericRow({100 * P.Alpha, P.Seconds, P.Joules});
    Table.writeFile(Path);
  }
  Args.reportUnknown();
  return 0;
}
