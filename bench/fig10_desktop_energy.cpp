//===-- bench/fig10_desktop_energy.cpp - Reproduce Fig. 10 ----------------===//
//
// Part of the ecas project, under the MIT License.
//
// Fig. 10: relative total-energy efficiency versus the Oracle on the
// desktop. The paper reports averages of GPU 95.8%, PERF 70.4%,
// EAS 97.2% — GPU-alone is nearly optimal because the desktop GPU is
// 2-3x more power-efficient than the CPU.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"

using namespace ecas;

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Figure 10: relative energy-use efficiency vs Oracle (desktop, "
      "higher is better)",
      "averages — GPU 95.8%, PERF 70.4%, EAS 97.2% of Oracle");

  PlatformSpec Spec = haswellDesktop();
  PowerCurveSet Curves = Characterizer(Spec).characterize();
  std::vector<Workload> Suite = desktopSuite(bench::configFromFlags(Args));
  std::vector<bench::SchemeRow> Rows =
      bench::runComparison(Spec, Suite, Curves, Metric::energy());
  bench::printComparison(Rows);
  bench::maybeWriteCsv(Args, Rows);
  bench::maybeWriteBenchMetrics(Args, "fig10-desktop-energy", Metric::energy(),
                                Rows);
  Args.reportUnknown();
  return 0;
}
