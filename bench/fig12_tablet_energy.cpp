//===-- bench/fig12_tablet_energy.cpp - Reproduce Fig. 12 -----------------===//
//
// Part of the ecas project, under the MIT License.
//
// Fig. 12: relative energy-use efficiency versus the Oracle on the Bay
// Trail tablet. The paper reports EAS at 96.4% — 7.5% better than PERF,
// 10.1% better than GPU-alone, 57.2% better than CPU-alone. Unlike the
// desktop, GPU-alone is *not* near-optimal here (the tablet GPU burns
// more power than its CPU).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"

using namespace ecas;

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Figure 12: relative energy-use efficiency vs Oracle (Bay Trail "
      "tablet)",
      "EAS 96.4% of Oracle; better than PERF/GPU/CPU by 7.5%/10.1%/57.2%");

  PlatformSpec Spec = bayTrailTablet();
  PowerCurveSet Curves = Characterizer(Spec).characterize();
  std::vector<Workload> Suite = tabletSuite(bench::configFromFlags(Args));
  std::vector<bench::SchemeRow> Rows =
      bench::runComparison(Spec, Suite, Curves, Metric::energy());
  bench::printComparison(Rows);
  bench::maybeWriteCsv(Args, Rows);
  bench::maybeWriteBenchMetrics(Args, "fig12-tablet-energy", Metric::energy(),
                                Rows);
  Args.reportUnknown();
  return 0;
}
