//===-- bench/abl_profile_size.cpp - GPU_PROFILE_SIZE ablation ------------===//
//
// Part of the ecas project, under the MIT License.
//
// Section 3.2: "The GPU_PROFILE_SIZE parameter must be chosen carefully
// based on the available GPU parallelism" — 2048 on the desktop
// (2240-way parallel GPU). This sweeps the chunk size and reports EAS
// EDP efficiency plus how many iterations profiling consumed.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"
#include "ecas/support/Stats.h"

#include <cstdio>

using namespace ecas;

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Ablation: GPU profiling chunk size (desktop, EDP)",
      "paper picks 2048 to fill the 2240-way parallel desktop GPU");

  PlatformSpec Spec = haswellDesktop();
  PowerCurveSet Curves = Characterizer(Spec).characterize();
  std::vector<Workload> Suite = desktopSuite(bench::configFromFlags(Args));
  ExecutionSession Session(Spec);
  Metric Objective = Metric::edp();

  std::printf("%8s %14s %14s\n", "chunk", "mean EAS eff", "min EAS eff");
  for (double Chunk : {64.0, 256.0, 1024.0, 2048.0, 8192.0, 32768.0}) {
    EasConfig Config;
    Config.GpuProfileSize = Chunk;
    RunningStats Eff;
    for (const Workload &W : Suite) {
      SessionReport Oracle = Session.runOracle(W.Trace, Objective);
      SessionReport Eas =
          Session.runEas(W.Trace, Curves, Objective, Config);
      Eff.add(Oracle.MetricValue / Eas.MetricValue);
    }
    std::printf("%8.0f %13.1f%% %13.1f%%%s\n", Chunk, 100 * Eff.mean(),
                100 * Eff.min(),
                Chunk == 2048.0 ? "   <- platform default" : "");
  }
  Args.reportUnknown();
  return 0;
}
