//===-- bench/fig02_power_timeline.cpp - Reproduce Fig. 2 -----------------===//
//
// Part of the ecas project, under the MIT License.
//
// Fig. 2: package and CPU power over time for a memory-bound application
// with a 90-10% GPU-CPU distribution, on the Bay Trail tablet and the
// Haswell desktop. On the tablet, package power drops during CPU-only
// intervals; on the desktop it *rises* once the GPU finishes and the
// CPU regains full turbo.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"
#include "ecas/power/MicroBenchmarks.h"
#include "ecas/sim/SimProcessor.h"
#include "ecas/support/Format.h"

#include <cstdio>

using namespace ecas;

static void runTimeline(const PlatformSpec &Spec, double Alpha,
                        const Flags &Args) {
  std::printf("\n--- %s, memory-bound app, %.0f%% GPU / %.0f%% CPU ---\n",
              Spec.Name.c_str(), 100 * Alpha, 100 * (1 - Alpha));

  // Size the run to a couple of seconds of virtual time like the paper's
  // charts: probe device rates, then pick N.
  KernelDesc Kernel = memoryBoundMicroKernel();
  DeviceRates Rates = probeDeviceRates(Spec, Kernel);
  double N = 2.0 * (Rates.CpuItersPerSec + Rates.GpuItersPerSec);

  SimProcessor Proc(Spec);
  double Interval = Args.getDouble("interval", 0.05);
  Proc.enableTrace(Interval);
  Proc.gpu().enqueue(Kernel, Alpha * N);
  Proc.cpu().enqueue(Kernel, (1 - Alpha) * N);
  Proc.runUntilIdle();
  Proc.trace()->finish();

  double MaxWatts = 0;
  for (const TraceSample &Sample : Proc.trace()->samples())
    MaxWatts = std::max(MaxWatts, Sample.PackageWatts);

  std::printf("%8s %9s %9s  %s\n", "time", "pkg W", "cpu W",
              "package power");
  for (const TraceSample &Sample : Proc.trace()->samples())
    std::printf("%8s %9.2f %9.2f  |%s|\n",
                formatDuration(Sample.TimeSec).c_str(),
                Sample.PackageWatts, Sample.CpuWatts,
                bench::bar(Sample.PackageWatts, MaxWatts, 40).c_str());

  std::string Path = Args.getString(
      Spec.Pcu.GpuPriority ? "csv-desktop" : "csv-tablet", "");
  if (!Path.empty()) {
    std::FILE *File = std::fopen(Path.c_str(), "w");
    if (File) {
      std::string Csv = Proc.trace()->toCsv();
      std::fwrite(Csv.data(), 1, Csv.size(), File);
      std::fclose(File);
    }
  }
}

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Figure 2: package & CPU power over time, memory-bound app at "
      "90-10% GPU-CPU split",
      "tablet: power drops when only the CPU runs; desktop: power rises "
      "during the CPU-only tail");
  runTimeline(bayTrailTablet(), 0.9, Args);
  runTimeline(haswellDesktop(), 0.9, Args);
  Args.reportUnknown();
  return 0;
}
