//===-- bench/micro_decision.cpp - Decision hot-path latency ---------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Measures the steady-state scheduling decision: the warmed table-G hit
// (lookup, operating-point reuse, partitioned dispatch bookkeeping) and
// the joint (alpha, frequency) search that profiling repetitions pay —
// both run with a 4-state DVFS ladder so the figures cover the joint
// decision core, not just the legacy alpha axis. Links
// support/AllocGuard.cpp so the run also reports allocations per
// decision — the committed BENCH_decision.json at the repo root pins
// allocations_per_decision at 0, the same property HotPathTest asserts
// and tools/ecas_hotpath.py proves statically (DESIGN.md §14).
//
// Usage: micro_decision [output.json]   (default: BENCH_decision.json)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/core/EasScheduler.h"
#include "ecas/core/OperatingPoint.h"
#include "ecas/core/TimeModel.h"
#include "ecas/hw/Presets.h"
#include "ecas/power/MicroBenchmarks.h"
#include "ecas/support/AllocGuard.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace ecas;

namespace {

using Clock = std::chrono::steady_clock;

double nsSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - Start)
      .count();
}

struct LatencyStats {
  double P50 = 0.0;
  double P90 = 0.0;
  double P99 = 0.0;
  double Mean = 0.0;
};

LatencyStats summarize(std::vector<double> &SamplesNs) {
  LatencyStats Stats;
  if (SamplesNs.empty())
    return Stats;
  std::sort(SamplesNs.begin(), SamplesNs.end());
  auto Pct = [&](double P) {
    size_t Idx = static_cast<size_t>(P * (SamplesNs.size() - 1));
    return SamplesNs[Idx];
  };
  Stats.P50 = Pct(0.50);
  Stats.P90 = Pct(0.90);
  Stats.P99 = Pct(0.99);
  double Sum = 0.0;
  for (double S : SamplesNs)
    Sum += S;
  Stats.Mean = Sum / static_cast<double>(SamplesNs.size());
  return Stats;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPath = Argc > 1 ? Argv[1] : "BENCH_decision.json";
  bench::printBanner(
      "micro_decision: steady-state decision latency",
      "hot path is allocation-free; decisions are sub-microsecond");

  constexpr unsigned NumPStates = 4;
  PlatformSpec Spec = haswellDesktop();
  Spec.synthesizePStates(NumPStates);
  PowerCurveFamily Curves = characterizeFamily(Spec);
  SimProcessor Proc(Spec);
  EasConfig Config;
  Config.PStates = true;
  EasScheduler Scheduler(Curves, Metric::edp(), Config);
  KernelDesc Kernel = computeBoundMicroKernel();

  // Learn the kernel and warm every lazily-grown buffer to steady state.
  constexpr double N = 2e6;
  if (!Scheduler.execute(Proc, Kernel, N).Profiled) {
    std::fprintf(stderr, "error: first invocation did not profile\n");
    return 1;
  }
  for (int I = 0; I != 16; ++I) {
    if (!Scheduler.execute(Proc, Kernel, N).TableHit) {
      std::fprintf(stderr, "error: warmup invocation missed table G\n");
      return 1;
    }
  }

  // Warmed table-hit decisions: wall-clock latency + allocation count.
  // Each execute() simulates the whole dispatch, so the figure is the
  // runtime's per-invocation overhead including the simulator step —
  // an upper bound on the scheduling decision itself.
  constexpr int HitIterations = 2000;
  std::vector<double> HitNs;
  HitNs.reserve(HitIterations);
  AllocTally HitTally;
  for (int I = 0; I != HitIterations; ++I) {
    Clock::time_point T0 = Clock::now();
    auto Outcome = Scheduler.execute(Proc, Kernel, N);
    HitNs.push_back(nsSince(T0));
    if (!Outcome.TableHit) {
      std::fprintf(stderr, "error: measured invocation missed table G\n");
      return 1;
    }
  }
  uint64_t HitAllocs = HitTally.allocations();
  LatencyStats Hit = summarize(HitNs);
  double AllocsPerDecision =
      static_cast<double>(HitAllocs) / HitIterations;

  // Joint (alpha, frequency) search at profiling fidelity: the 0.05
  // alpha grid plus golden-section refine, evaluated across the whole
  // DVFS ladder. (The JSON key keeps its legacy name so CI diffs stay
  // comparable across the chooseAlpha -> chooseOperatingPoint redesign.)
  TimeModel Model(4e8, 7e8);
  WorkloadClass Class;
  PStateView Views[kMaxPStates];
  for (unsigned S = 0; S != NumPStates; ++S) {
    PStateSpec State = Spec.pstateAt(S);
    PStateSpec Full = Spec.pstateAt(0);
    Views[S].Curve = &Curves.stateCurves(S).curveFor(Class);
    Views[S].CpuFreqScale = State.CpuFreqGHz / Full.CpuFreqGHz;
    Views[S].GpuFreqScale = State.GpuFreqGHz / Full.GpuFreqGHz;
  }
  Metric Objective = Metric::edp();
  OperatingPointSearchConfig Search;
  Search.Step = 0.05;
  Search.Refine = true;
  Search.MemBoundFraction = 0.2;
  (void)chooseOperatingPoint(Model, Views, NumPStates, Objective, N,
                             Search); // warm
  constexpr int SearchIterations = 5000;
  std::vector<double> SearchNs;
  SearchNs.reserve(SearchIterations);
  AllocTally SearchTally;
  unsigned Evals = 0;
  for (int I = 0; I != SearchIterations; ++I) {
    Clock::time_point T0 = Clock::now();
    Decision Choice =
        chooseOperatingPoint(Model, Views, NumPStates, Objective, N, Search);
    SearchNs.push_back(nsSince(T0));
    Evals = Choice.Evaluations;
  }
  uint64_t SearchAllocs = SearchTally.allocations();
  LatencyStats Alpha = summarize(SearchNs);

  std::printf("table-hit decision: p50 %.0f ns  p90 %.0f ns  p99 %.0f ns  "
              "mean %.0f ns  (%d invocations, %llu allocations)\n",
              Hit.P50, Hit.P90, Hit.P99, Hit.Mean, HitIterations,
              static_cast<unsigned long long>(HitAllocs));
  std::printf("joint search (%u P-states): p50 %.0f ns  p90 %.0f ns  "
              "p99 %.0f ns  mean %.0f ns  (%u evaluations/search, "
              "%llu allocations)\n",
              NumPStates, Alpha.P50, Alpha.P90, Alpha.P99, Alpha.Mean, Evals,
              static_cast<unsigned long long>(SearchAllocs));

  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out,
               "{\n"
               "  \"bench\": \"decision\",\n"
               "  \"platform\": \"haswell-desktop\",\n"
               "  \"pstates\": %u,\n"
               "  \"invocations\": %d,\n"
               "  \"table_hit_latency_ns\": "
               "{\"p50\": %.0f, \"p90\": %.0f, \"p99\": %.0f, "
               "\"mean\": %.0f},\n"
               "  \"alpha_search_latency_ns\": "
               "{\"p50\": %.0f, \"p90\": %.0f, \"p99\": %.0f, "
               "\"mean\": %.0f},\n"
               "  \"alpha_search_evaluations\": %u,\n"
               "  \"allocations_per_decision\": %.0f,\n"
               "  \"allocations_per_alpha_search\": %.0f\n"
               "}\n",
               NumPStates, HitIterations, Hit.P50, Hit.P90, Hit.P99, Hit.Mean,
               Alpha.P50,
               Alpha.P90, Alpha.P99, Alpha.Mean, Evals, AllocsPerDecision,
               static_cast<double>(SearchAllocs) / SearchIterations);
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath.c_str());

  return AllocsPerDecision == 0.0 ? 0 : 1;
}
