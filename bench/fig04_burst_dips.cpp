//===-- bench/fig04_burst_dips.cpp - Reproduce Fig. 4 ---------------------===//
//
// Part of the ecas project, under the MIT License.
//
// Fig. 4: a memory-bound micro-benchmark executed ten times with 5% of
// the work on the GPU. Each short GPU burst pulls the package from
// ~60 W to well below 40 W while the PCU conservatively rebudgets the
// CPU, then power ramps back.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"
#include "ecas/power/MicroBenchmarks.h"
#include "ecas/sim/SimProcessor.h"
#include "ecas/support/Format.h"

#include <cstdio>

using namespace ecas;

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Figure 4: memory-bound micro executed 10x with a 5% GPU share "
      "(desktop)",
      "package drops from ~60 W to <~40 W during each GPU burst");

  PlatformSpec Spec = haswellDesktop();
  KernelDesc Kernel = memoryBoundMicroKernel();
  DeviceRates Rates = probeDeviceRates(Spec, Kernel);

  unsigned Executions = static_cast<unsigned>(Args.getInt("executions", 10));
  // Each execution: ~2 s of CPU work with 5% of iterations on the GPU.
  double PerExecution = 2.0 * Rates.CpuItersPerSec;

  SimProcessor Proc(Spec);
  Proc.enableTrace(0.1);
  for (unsigned Exec = 0; Exec != Executions; ++Exec) {
    Proc.gpu().enqueue(Kernel, 0.05 * PerExecution);
    Proc.cpu().enqueue(Kernel, 0.95 * PerExecution);
    Proc.runUntilIdle();
    Proc.runFor(0.2); // Idle gap between executions.
  }
  Proc.trace()->finish();

  double MaxWatts = 0, MinBusyWatts = 1e30;
  for (const TraceSample &Sample : Proc.trace()->samples()) {
    MaxWatts = std::max(MaxWatts, Sample.PackageWatts);
    if (Sample.PackageWatts > 15.0) // Skip idle-gap samples.
      MinBusyWatts = std::min(MinBusyWatts, Sample.PackageWatts);
  }

  std::printf("%8s %9s  %s\n", "time", "pkg W", "package power");
  for (const TraceSample &Sample : Proc.trace()->samples())
    std::printf("%8s %9.2f  |%s|%s\n",
                formatDuration(Sample.TimeSec).c_str(),
                Sample.PackageWatts,
                bench::bar(Sample.PackageWatts, MaxWatts, 40).c_str(),
                Sample.GpuWatts > 3.0 ? "  <- GPU active" : "");
  std::printf("\npeak package power: %.1f W (paper: ~60 W)\n", MaxWatts);
  std::printf("deepest busy-phase dip: %.1f W (paper: <~40 W)\n",
              MinBusyWatts);
  Args.reportUnknown();
  return 0;
}
