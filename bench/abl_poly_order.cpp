//===-- bench/abl_poly_order.cpp - Polynomial-order ablation --------------===//
//
// Part of the ecas project, under the MIT License.
//
// Section 2: "We found empirically that a sixth-order polynomial was a
// good fit." This ablation fits every category at orders 2..8 and
// reports fit quality plus the end-to-end EAS EDP efficiency when the
// scheduler uses curves of each order.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"
#include "ecas/math/PolyFit.h"
#include "ecas/support/Stats.h"

#include <cstdio>

using namespace ecas;

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Ablation: power-curve polynomial order (desktop)",
      "the paper found sixth-order a good fit; this sweeps orders 2..8");

  PlatformSpec Spec = haswellDesktop();
  WorkloadConfig Config = bench::configFromFlags(Args);
  std::vector<Workload> Suite = desktopSuite(Config);
  ExecutionSession Session(Spec);
  Metric Objective = Metric::edp();

  std::printf("%6s %12s %12s %14s\n", "order", "mean r^2", "min r^2",
              "EAS EDP eff");
  for (unsigned Degree = 2; Degree <= 8; ++Degree) {
    CharacterizerConfig ProbeConfig;
    ProbeConfig.PolyDegree = Degree;
    // Orders above 6 need a finer sweep to stay overdetermined with
    // margin; the paper's 0.1 grid gives 11 points.
    if (Degree > 6)
      ProbeConfig.AlphaStep = 0.05;
    Characterizer Probe(Spec, ProbeConfig);
    PowerCurveSet Curves = Probe.characterize();

    RunningStats R2;
    for (unsigned Index = 0; Index != WorkloadClass::NumClasses; ++Index)
      R2.add(Curves.curveFor(WorkloadClass::fromIndex(Index)).RSquared);

    std::vector<double> Effs;
    for (const Workload &W : Suite) {
      SessionReport Oracle = Session.runOracle(W.Trace, Objective);
      SessionReport Eas = Session.runEas(W.Trace, Curves, Objective);
      Effs.push_back(Oracle.MetricValue / Eas.MetricValue);
    }
    std::printf("%6u %12.4f %12.4f %13.1f%%\n", Degree, R2.mean(), R2.min(),
                100 * arithmeticMean(Effs));
  }
  Args.reportUnknown();
  return 0;
}
