//===-- bench/abl_alpha_grid.cpp - Alpha-grid-step ablation ---------------===//
//
// Part of the ecas project, under the MIT License.
//
// Section 3.2 evaluates the objective "on a range of values between 0
// and 1 in certain increments (e.g., 0.1 or 0.05)". This sweeps the grid
// step and also tries the golden-section refinement extension.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"
#include "ecas/support/Stats.h"

#include <cstdio>

using namespace ecas;

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Ablation: offload-ratio grid step and refinement (desktop, EDP)",
      "paper uses 0.1 or 0.05 increments; refinement is an extension");

  PlatformSpec Spec = haswellDesktop();
  PowerCurveSet Curves = Characterizer(Spec).characterize();
  std::vector<Workload> Suite = desktopSuite(bench::configFromFlags(Args));
  ExecutionSession Session(Spec);
  Metric Objective = Metric::edp();

  struct Variant {
    const char *Name;
    double Step;
    bool Refine;
  } Variants[] = {{"step 0.25", 0.25, false},
                  {"step 0.10", 0.10, false},
                  {"step 0.05", 0.05, false},
                  {"step 0.02", 0.02, false},
                  {"0.10+golden", 0.10, true}};

  std::printf("%-12s %14s %14s\n", "variant", "mean EAS eff",
              "min EAS eff");
  for (const Variant &V : Variants) {
    EasConfig Config;
    Config.AlphaStep = V.Step;
    Config.RefineAlpha = V.Refine;
    RunningStats Eff;
    for (const Workload &W : Suite) {
      SessionReport Oracle = Session.runOracle(W.Trace, Objective, 0.05);
      SessionReport Eas =
          Session.runEas(W.Trace, Curves, Objective, Config);
      Eff.add(Oracle.MetricValue / Eas.MetricValue);
    }
    std::printf("%-12s %13.1f%% %13.1f%%\n", V.Name, 100 * Eff.mean(),
                100 * Eff.min());
  }
  Args.reportUnknown();
  return 0;
}
