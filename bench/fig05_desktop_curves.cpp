//===-- bench/fig05_desktop_curves.cpp - Reproduce Fig. 5 -----------------===//
//
// Part of the ecas project, under the MIT License.
//
// Fig. 5: the eight desktop power characterization curves, each with its
// fitted sixth-order polynomial equation. Short-CPU categories trend
// convex (power falls as offload rises), long-CPU categories concave.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"
#include "ecas/support/Csv.h"
#include "ecas/support/Format.h"

#include <cstdio>

using namespace ecas;

namespace {

void printCurves(const PlatformSpec &Spec, const Flags &Args) {
  CharacterizerConfig Config;
  Config.AlphaStep = Args.getDouble("step", 0.1);
  Config.PolyDegree =
      static_cast<unsigned>(Args.getInt("degree", 6));
  Characterizer Probe(Spec, Config);

  CsvTable Table;
  Table.setHeader({"category", "alpha", "measured_w", "fitted_w"});

  for (unsigned Index = 0; Index != WorkloadClass::NumClasses; ++Index) {
    WorkloadClass Class = WorkloadClass::fromIndex(Index);
    std::vector<PowerSamplePoint> Samples;
    PowerCurve Curve = Probe.characterizeCategory(Class, &Samples);

    double MaxWatts = 0;
    for (const PowerSamplePoint &Point : Samples)
      MaxWatts = std::max(MaxWatts, Point.AvgPackageWatts);

    std::printf("\n--- %s (r^2 = %.4f) ---\n", Class.name().c_str(),
                Curve.RSquared);
    std::printf("%s\n", Curve.Poly.toEquationString().c_str());
    std::printf("%6s %10s %10s  %s\n", "gpu%", "measured", "fitted",
                "measured power");
    for (const PowerSamplePoint &Point : Samples) {
      double Fitted = Curve.powerAt(Point.Alpha);
      std::printf("%5.0f%% %9.2fW %9.2fW  |%s|\n", 100 * Point.Alpha,
                  Point.AvgPackageWatts, Fitted,
                  bench::bar(Point.AvgPackageWatts, MaxWatts, 36).c_str());
      Table.addRow({Class.name(), formatString("%.2f", Point.Alpha),
                    formatString("%.3f", Point.AvgPackageWatts),
                    formatString("%.3f", Fitted)});
    }
  }

  std::string Path = Args.getString("csv", "");
  if (!Path.empty())
    Table.writeFile(Path);
}

} // namespace

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Figure 5: desktop power characterization, eight categories with "
      "sixth-order fits",
      "CPU-alone compute ~45 W, GPU-alone ~30 W; memory-bound curves run "
      "hotter; short-CPU categories convex");
  printCurves(haswellDesktop(), Args);
  Args.reportUnknown();
  return 0;
}
