//===-- bench/BenchCommon.h - Shared harness helpers ------------*- C++ -*-===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Utilities shared by the figure/table reproduction harnesses: banner
/// printing, ASCII bar charts for the efficiency figures, the
/// four-scheme comparison runner, and optional CSV dumps.
///
//===----------------------------------------------------------------------===//

#ifndef ECAS_BENCH_BENCHCOMMON_H
#define ECAS_BENCH_BENCHCOMMON_H

#include "ecas/core/ExecutionSession.h"
#include "ecas/power/Characterizer.h"
#include "ecas/support/Flags.h"
#include "ecas/workloads/Registry.h"

#include <string>
#include <vector>

namespace ecas::bench {

/// Prints the harness banner: which figure/table of the paper this
/// regenerates and what the paper reported.
void printBanner(const std::string &Experiment,
                 const std::string &PaperClaim);

/// One workload row of a Figs. 9-12 style comparison.
struct SchemeRow {
  std::string Abbrev;
  double CpuEff = 0.0;
  double GpuEff = 0.0;
  double PerfEff = 0.0;
  double EasEff = 0.0;
  double OracleAlpha = 0.0;
  double EasAlpha = 0.0;
  /// Absolute EAS/Oracle totals, kept for the machine-readable dump so
  /// future runs can diff raw time/energy, not just ratios.
  double EasSeconds = 0.0;
  double EasJoules = 0.0;
  double OracleSeconds = 0.0;
  double OracleJoules = 0.0;
};

/// Runs CPU/GPU/PERF/EAS against the Oracle for every workload under
/// \p Objective; efficiencies are Oracle metric / scheme metric (the
/// paper's "relative efficiency compared to Oracle", higher is better).
std::vector<SchemeRow> runComparison(const PlatformSpec &Spec,
                                     const std::vector<Workload> &Suite,
                                     const PowerCurveSet &Curves,
                                     const Metric &Objective);

/// Prints the comparison as a table plus per-scheme ASCII bars and
/// averages, mirroring the bar charts of Figs. 9-12.
void printComparison(const std::vector<SchemeRow> &Rows);

/// Writes the comparison as CSV when --csv=<path> was passed.
void maybeWriteCsv(const Flags &Args, const std::vector<SchemeRow> &Rows);

/// Writes a machine-readable JSON dump (per-workload time/energy/alpha
/// plus the efficiency ratios) when --bench-metrics[=<path>] was
/// passed; the path defaults to BENCH_metrics.json. Written atomically
/// so a concurrent reader never sees a torn document.
void maybeWriteBenchMetrics(const Flags &Args, const std::string &Experiment,
                            const Metric &Objective,
                            const std::vector<SchemeRow> &Rows);

/// An ASCII horizontal bar scaled to \p Value in [0, Max].
std::string bar(double Value, double Max, unsigned Width = 40);

/// Workload config from --scale (default keeps the graph workloads
/// quick while preserving per-invocation magnitudes).
WorkloadConfig configFromFlags(const Flags &Args,
                               double DefaultScale = 0.3);

} // namespace ecas::bench

#endif // ECAS_BENCH_BENCHCOMMON_H
