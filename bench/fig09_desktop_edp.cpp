//===-- bench/fig09_desktop_edp.cpp - Reproduce Fig. 9 --------------------===//
//
// Part of the ecas project, under the MIT License.
//
// Fig. 9: relative energy-delay-product efficiency versus the Oracle on
// the desktop for CPU-alone, GPU-alone, PERF, and EAS. The paper reports
// averages of GPU 79.6%, PERF 83.9%, EAS 96.2%.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"

using namespace ecas;

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Figure 9: relative EDP efficiency vs Oracle (desktop, higher is "
      "better)",
      "averages — GPU 79.6%, PERF 83.9%, EAS 96.2% of Oracle");

  PlatformSpec Spec = haswellDesktop();
  PowerCurveSet Curves = Characterizer(Spec).characterize();
  std::vector<Workload> Suite = desktopSuite(bench::configFromFlags(Args));
  std::vector<bench::SchemeRow> Rows =
      bench::runComparison(Spec, Suite, Curves, Metric::edp());
  bench::printComparison(Rows);
  bench::maybeWriteCsv(Args, Rows);
  bench::maybeWriteBenchMetrics(Args, "fig09-desktop-edp", Metric::edp(), Rows);
  Args.reportUnknown();
  return 0;
}
