//===-- bench/fig06_tablet_curves.cpp - Reproduce Fig. 6 ------------------===//
//
// Part of the ecas project, under the MIT License.
//
// Fig. 6: the eight Bay Trail tablet characterization curves. On this
// platform the GPU consumes *more* power than the CPU (compute: ~1.5 W
// CPU-alone vs ~2 W GPU-alone) and memory-bound runs are *cooler* than
// compute-bound ones — the inverse of the desktop.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"
#include "ecas/support/Csv.h"
#include "ecas/support/Format.h"

#include <cstdio>

using namespace ecas;

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Figure 6: Bay Trail tablet power characterization, eight "
      "categories with sixth-order fits",
      "compute: ~1.5 W CPU-alone vs ~2 W GPU-alone; memory-bound cooler "
      "than compute-bound; mostly concave curves");

  PlatformSpec Spec = bayTrailTablet();
  CharacterizerConfig Config;
  Config.AlphaStep = Args.getDouble("step", 0.1);
  Config.PolyDegree = static_cast<unsigned>(Args.getInt("degree", 6));
  Characterizer Probe(Spec, Config);

  CsvTable Table;
  Table.setHeader({"category", "alpha", "measured_w", "fitted_w"});

  for (unsigned Index = 0; Index != WorkloadClass::NumClasses; ++Index) {
    WorkloadClass Class = WorkloadClass::fromIndex(Index);
    std::vector<PowerSamplePoint> Samples;
    PowerCurve Curve = Probe.characterizeCategory(Class, &Samples);

    double MaxWatts = 0;
    for (const PowerSamplePoint &Point : Samples)
      MaxWatts = std::max(MaxWatts, Point.AvgPackageWatts);

    std::printf("\n--- %s (r^2 = %.4f) ---\n", Class.name().c_str(),
                Curve.RSquared);
    std::printf("%s\n", Curve.Poly.toEquationString().c_str());
    std::printf("%6s %10s %10s  %s\n", "gpu%", "measured", "fitted",
                "measured power");
    for (const PowerSamplePoint &Point : Samples) {
      double Fitted = Curve.powerAt(Point.Alpha);
      std::printf("%5.0f%% %9.3fW %9.3fW  |%s|\n", 100 * Point.Alpha,
                  Point.AvgPackageWatts, Fitted,
                  bench::bar(Point.AvgPackageWatts, MaxWatts, 36).c_str());
      Table.addRow({Class.name(), formatString("%.2f", Point.Alpha),
                    formatString("%.4f", Point.AvgPackageWatts),
                    formatString("%.4f", Fitted)});
    }
  }

  std::string Path = Args.getString("csv", "");
  if (!Path.empty())
    Table.writeFile(Path);
  Args.reportUnknown();
  return 0;
}
