//===-- bench/table1_workloads.cpp - Reproduce Table 1 --------------------===//
//
// Part of the ecas project, under the MIT License.
//
// Table 1: per-workload statistics — invocation counts, regular vs
// irregular, and the online classification (compute/memory, CPU
// short/long, GPU short/long). The classification column is *measured*
// by running the EAS profiler on the simulated desktop, then compared
// against the paper's Table 1 entry.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/core/EasScheduler.h"
#include "ecas/hw/Presets.h"
#include "ecas/support/Format.h"

#include <cstdio>

using namespace ecas;

/// Runs EAS over the trace until the kernel gets classified; returns the
/// last profiled classification.
static bool classifyByProfiling(const PlatformSpec &Spec,
                                const PowerCurveSet &Curves,
                                const Workload &W, WorkloadClass &Out) {
  SimProcessor Proc(Spec);
  EasScheduler Scheduler(Curves, Metric::edp());
  bool Classified = false;
  for (const KernelInvocation &Invocation : W.Trace) {
    auto Outcome =
        Scheduler.execute(Proc, Invocation.Kernel, Invocation.Iterations);
    if (Outcome.Profiled) {
      Out = Outcome.Class;
      Classified = true;
    }
  }
  return Classified;
}

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Table 1: workload statistics and online classification (desktop)",
      "7 irregular + 5 regular workloads; classifications per Table 1's "
      "C/M and S/L columns");

  PlatformSpec Spec = haswellDesktop();
  PowerCurveSet Curves = Characterizer(Spec).characterize();
  std::vector<Workload> Suite = desktopSuite(bench::configFromFlags(Args));

  std::printf("%-5s %-22s %6s %12s %5s %9s %9s %6s\n", "abbr", "name",
              "invoc", "iterations", "reg", "expected", "measured",
              "match");
  unsigned Matches = 0, Classified = 0;
  for (const Workload &W : Suite) {
    WorkloadClass Expected;
    Expected.Bound = W.ExpectedBound;
    Expected.CpuDuration = W.ExpectedCpu;
    Expected.GpuDuration = W.ExpectedGpu;
    WorkloadClass Measured;
    bool Got = classifyByProfiling(Spec, Curves, W, Measured);
    bool Match = Got && Measured == Expected;
    if (Got)
      ++Classified;
    if (Match)
      ++Matches;
    std::printf("%-5s %-22s %6u %12.0f %5s %9s %9s %6s\n",
                W.Abbrev.c_str(), W.Name.c_str(), W.numInvocations(),
                W.totalIterations(), W.Regular ? "R" : "IR",
                Expected.shortName().c_str(),
                Got ? Measured.shortName().c_str() : "(cpu)",
                Got ? (Match ? "yes" : "NO") : "-");
  }
  std::printf("\n%u of %u profiled classifications match Table 1\n",
              Matches, Classified);
  std::printf("(paper invocation counts: BFS 1748, CC 2147, SP 2577 on "
              "W-USA; graph traces here derive from the synthetic road "
              "network, so counts scale with --scale)\n");
  Args.reportUnknown();
  return 0;
}
