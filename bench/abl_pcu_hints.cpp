//===-- bench/abl_pcu_hints.cpp - Runtime->PCU feedback extension ---------===//
//
// Part of the ecas project, under the MIT License.
//
// Section 7's future work: "we would like to incorporate feedback from
// our user-level runtime in power management techniques". This
// extension lets EAS announce the split it is about to execute so the
// governor jumps straight to the steady-state operating point instead of
// discovering it through conservative wake resets and slow ramps.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"
#include "ecas/support/Stats.h"

#include <cstdio>

using namespace ecas;

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Extension: runtime->PCU feedback hints (desktop, per metric)",
      "the paper's future work — hinting the upcoming split removes "
      "wake-reset and ramp losses");

  PlatformSpec Spec = haswellDesktop();
  PowerCurveSet Curves = Characterizer(Spec).characterize();
  std::vector<Workload> Suite = desktopSuite(bench::configFromFlags(Args));
  ExecutionSession Session(Spec);

  for (const Metric &Objective : {Metric::edp(), Metric::energy()}) {
    std::printf("\n--- objective: %s ---\n", Objective.name().c_str());
    std::printf("%-5s %14s %14s %10s\n", "bench", "EAS", "EAS+hints",
                "delta");
    RunningStats Base, Hinted;
    for (const Workload &W : Suite) {
      SessionReport Oracle = Session.runOracle(W.Trace, Objective);
      SessionReport Plain = Session.runEas(W.Trace, Curves, Objective);
      EasConfig Config;
      Config.PcuHints = true;
      SessionReport WithHints =
          Session.runEas(W.Trace, Curves, Objective, Config);
      double EffPlain = Oracle.MetricValue / Plain.MetricValue;
      double EffHints = Oracle.MetricValue / WithHints.MetricValue;
      Base.add(EffPlain);
      Hinted.add(EffHints);
      std::printf("%-5s %13.1f%% %13.1f%% %+9.1f%%\n", W.Abbrev.c_str(),
                  100 * EffPlain, 100 * EffHints,
                  100 * (EffHints - EffPlain));
    }
    std::printf("%-5s %13.1f%% %13.1f%% %+9.1f%%\n", "AVG",
                100 * Base.mean(), 100 * Hinted.mean(),
                100 * (Hinted.mean() - Base.mean()));
  }
  Args.reportUnknown();
  return 0;
}
