//===-- bench/BenchCommon.cpp - Shared harness helpers --------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/obs/MetricsExport.h"
#include "ecas/support/Csv.h"
#include "ecas/support/Format.h"

#include <cstdio>

using namespace ecas;
using namespace ecas::bench;

void ecas::bench::printBanner(const std::string &Experiment,
                              const std::string &PaperClaim) {
  std::printf("================================================================"
              "===============\n");
  std::printf("%s\n", Experiment.c_str());
  std::printf("paper: %s\n", PaperClaim.c_str());
  std::printf("================================================================"
              "===============\n");
}

std::string ecas::bench::bar(double Value, double Max, unsigned Width) {
  if (Max <= 0.0)
    Max = 1.0;
  double Frac = Value / Max;
  if (Frac < 0.0)
    Frac = 0.0;
  if (Frac > 1.0)
    Frac = 1.0;
  unsigned Filled = static_cast<unsigned>(Frac * Width + 0.5);
  std::string Out(Filled, '#');
  Out += std::string(Width - Filled, ' ');
  return Out;
}

std::vector<SchemeRow>
ecas::bench::runComparison(const PlatformSpec &Spec,
                           const std::vector<Workload> &Suite,
                           const PowerCurveSet &Curves,
                           const Metric &Objective) {
  ExecutionSession Session(Spec);
  std::vector<SchemeRow> Rows;
  for (const Workload &W : Suite) {
    SessionReport Oracle = Session.runOracle(W.Trace, Objective);
    SessionReport Cpu = Session.runCpuOnly(W.Trace, Objective);
    SessionReport Gpu = Session.runGpuOnly(W.Trace, Objective);
    SessionReport Perf = Session.runPerf(W.Trace, Objective);
    SessionReport Eas = Session.runEas(W.Trace, Curves, Objective);
    SchemeRow Row;
    Row.Abbrev = W.Abbrev;
    Row.CpuEff = Oracle.MetricValue / Cpu.MetricValue;
    Row.GpuEff = Oracle.MetricValue / Gpu.MetricValue;
    Row.PerfEff = Oracle.MetricValue / Perf.MetricValue;
    Row.EasEff = Oracle.MetricValue / Eas.MetricValue;
    Row.OracleAlpha = Oracle.MeanAlpha;
    Row.EasAlpha = Eas.MeanAlpha;
    Row.EasSeconds = Eas.Seconds;
    Row.EasJoules = Eas.Joules;
    Row.OracleSeconds = Oracle.Seconds;
    Row.OracleJoules = Oracle.Joules;
    Rows.push_back(Row);
  }
  return Rows;
}

void ecas::bench::printComparison(const std::vector<SchemeRow> &Rows) {
  std::printf("%-5s %8s %8s %8s %8s   %9s %7s\n", "bench", "CPU", "GPU",
              "PERF", "EAS", "oracle-a", "eas-a");
  double CpuSum = 0, GpuSum = 0, PerfSum = 0, EasSum = 0;
  for (const SchemeRow &Row : Rows) {
    std::printf("%-5s %7.1f%% %7.1f%% %7.1f%% %7.1f%%   %9.1f %7.2f\n",
                Row.Abbrev.c_str(), 100 * Row.CpuEff, 100 * Row.GpuEff,
                100 * Row.PerfEff, 100 * Row.EasEff, Row.OracleAlpha,
                Row.EasAlpha);
    CpuSum += Row.CpuEff;
    GpuSum += Row.GpuEff;
    PerfSum += Row.PerfEff;
    EasSum += Row.EasEff;
  }
  double N = static_cast<double>(Rows.size());
  std::printf("%-5s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "AVG",
              100 * CpuSum / N, 100 * GpuSum / N, 100 * PerfSum / N,
              100 * EasSum / N);
  std::printf("\nrelative efficiency vs Oracle (Oracle = 100%%):\n");
  struct {
    const char *Name;
    double Value;
  } Schemes[] = {{"CPU", CpuSum / N},
                 {"GPU", GpuSum / N},
                 {"PERF", PerfSum / N},
                 {"EAS", EasSum / N}};
  for (const auto &Scheme : Schemes)
    std::printf("  %-5s |%s| %5.1f%%\n", Scheme.Name,
                bar(Scheme.Value, 1.0).c_str(), 100 * Scheme.Value);
}

void ecas::bench::maybeWriteCsv(const Flags &Args,
                                const std::vector<SchemeRow> &Rows) {
  std::string Path = Args.getString("csv", "");
  if (Path.empty())
    return;
  CsvTable Table;
  Table.setHeader(
      {"bench", "cpu_eff", "gpu_eff", "perf_eff", "eas_eff", "oracle_alpha",
       "eas_alpha"});
  for (const SchemeRow &Row : Rows)
    Table.addRow({Row.Abbrev, formatString("%.4f", Row.CpuEff),
                  formatString("%.4f", Row.GpuEff),
                  formatString("%.4f", Row.PerfEff),
                  formatString("%.4f", Row.EasEff),
                  formatString("%.2f", Row.OracleAlpha),
                  formatString("%.2f", Row.EasAlpha)});
  if (Table.writeFile(Path))
    std::printf("\ncsv written to %s\n", Path.c_str());
  else
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
}

void ecas::bench::maybeWriteBenchMetrics(const Flags &Args,
                                         const std::string &Experiment,
                                         const Metric &Objective,
                                         const std::vector<SchemeRow> &Rows) {
  if (!Args.has("bench-metrics"))
    return;
  std::string Path = Args.getString("bench-metrics", "");
  // A bare --bench-metrics parses as the boolean sentinel; both spellings
  // mean "use the default file name".
  if (Path.empty() || Path == "true")
    Path = "BENCH_metrics.json";
  std::string Out = "{\n  \"schema\": \"ecas-bench-metrics-v1\",\n";
  Out += "  \"experiment\": \"" + Experiment + "\",\n";
  Out += "  \"objective\": \"" + Objective.name() + "\",\n";
  Out += "  \"workloads\": [";
  bool First = true;
  for (const SchemeRow &Row : Rows) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    {\"bench\": \"" + Row.Abbrev + "\"";
    Out += formatString(", \"eas\": {\"seconds\": %.9g, \"joules\": %.9g, "
                        "\"alpha\": %.4f}",
                        Row.EasSeconds, Row.EasJoules, Row.EasAlpha);
    Out += formatString(", \"oracle\": {\"seconds\": %.9g, \"joules\": %.9g, "
                        "\"alpha\": %.4f}",
                        Row.OracleSeconds, Row.OracleJoules, Row.OracleAlpha);
    Out += formatString(", \"eff\": {\"cpu\": %.6f, \"gpu\": %.6f, "
                        "\"perf\": %.6f, \"eas\": %.6f}}",
                        Row.CpuEff, Row.GpuEff, Row.PerfEff, Row.EasEff);
  }
  Out += "\n  ]\n}\n";
  if (Status S = obs::writeFileAtomic(Path, Out); !S)
    std::fprintf(stderr, "error: cannot write %s: %s\n", Path.c_str(),
                 S.message().c_str());
  else
    std::printf("\nbench metrics written to %s\n", Path.c_str());
}

WorkloadConfig ecas::bench::configFromFlags(const Flags &Args,
                                            double DefaultScale) {
  WorkloadConfig Config;
  Config.Scale = Args.getDouble("scale", DefaultScale);
  Config.Seed = static_cast<uint64_t>(Args.getInt("seed", 0x5eed));
  return Config;
}
