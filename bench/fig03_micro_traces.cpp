//===-- bench/fig03_micro_traces.cpp - Reproduce Fig. 3 -------------------===//
//
// Part of the ecas project, under the MIT License.
//
// Fig. 3: power over time on the desktop for two long-running micro-
// benchmarks, compute-bound (left) and memory-bound (right), each with a
// concurrent CPU+GPU phase. The paper measures ~55 W for the compute-
// bound co-run and ~63 W for the memory-bound co-run.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/hw/Presets.h"
#include "ecas/power/MicroBenchmarks.h"
#include "ecas/sim/SimProcessor.h"
#include "ecas/support/Format.h"
#include "ecas/support/Stats.h"

#include <cstdio>

using namespace ecas;

static void runMicroTrace(const PlatformSpec &Spec, const KernelDesc &Kernel,
                          const char *Label, double PaperCoRunWatts) {
  DeviceRates Rates = probeDeviceRates(Spec, Kernel);
  // Both devices run ~1 s concurrently; the slower one then finishes.
  double CoRunSeconds = 1.0;
  SimProcessor Proc(Spec);
  Proc.enableTrace(0.05);
  Proc.cpu().enqueue(Kernel, 1.5 * CoRunSeconds * Rates.CpuItersPerSec);
  Proc.gpu().enqueue(Kernel, CoRunSeconds * Rates.GpuItersPerSec);
  Proc.runUntilIdle();
  Proc.trace()->finish();

  RunningStats CoRun;
  double MaxWatts = 0;
  for (const TraceSample &Sample : Proc.trace()->samples()) {
    MaxWatts = std::max(MaxWatts, Sample.PackageWatts);
    if (Sample.GpuWatts > 5.0 * Spec.GpuPower.LeakageWatts &&
        Sample.TimeSec > 0.1)
      CoRun.add(Sample.PackageWatts);
  }

  std::printf("\n--- %s micro-benchmark ---\n", Label);
  std::printf("%8s %9s  %s\n", "time", "pkg W", "package power");
  for (const TraceSample &Sample : Proc.trace()->samples())
    std::printf("%8s %9.2f  |%s|\n",
                formatDuration(Sample.TimeSec).c_str(),
                Sample.PackageWatts,
                bench::bar(Sample.PackageWatts, MaxWatts, 40).c_str());
  std::printf("steady co-run package power: %.1f W (paper: ~%.0f W)\n",
              CoRun.mean(), PaperCoRunWatts);
}

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  bench::printBanner(
      "Figure 3: power traces of long-running compute- and memory-bound "
      "micro-benchmarks (desktop)",
      "compute-bound co-run ~55 W; memory-bound co-run ~63 W");
  PlatformSpec Spec = haswellDesktop();
  runMicroTrace(Spec, computeBoundMicroKernel(), "compute-bound", 55);
  runMicroTrace(Spec, memoryBoundMicroKernel(), "memory-bound", 63);
  Args.reportUnknown();
  return 0;
}
