//===-- bench/bench_frontier.cpp - Joint (alpha, f) energy frontier --------===//
//
// Part of the ecas project, under the MIT License.
//
// Figs. 9-12 companion for the DVFS axis: per workload class, runs the
// EAS scheduler once at fixed full frequency (the paper's decision
// space) and once with the joint (alpha, P-state) search enabled, and
// reports total energy / time / EDP for both. The committed
// BENCH_frontier.json at the repo root pins the frontier shift: the
// joint search must beat fixed-f energy on the memory-leaning classes,
// where downclocking is nearly free, and must never lose elsewhere.
//
// Usage: bench_frontier [output.json]   (default: BENCH_frontier.json)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "ecas/core/OperatingPoint.h"
#include "ecas/hw/Presets.h"
#include "ecas/power/MicroBenchmarks.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace ecas;

namespace {

struct SchemeTotals {
  double Seconds = 0.0;
  double Joules = 0.0;
  double MeanAlpha = 0.0;

  double edp() const { return Joules * Seconds; }
};

struct ClassRow {
  WorkloadClass Class;
  SchemeTotals Fixed;
  SchemeTotals Joint;

  double energySavingsPct() const {
    return Fixed.Joules > 0.0
               ? 100.0 * (Fixed.Joules - Joint.Joules) / Fixed.Joules
               : 0.0;
  }
};

SchemeTotals runScheme(const PlatformSpec &Spec, const InvocationTrace &Trace,
                       const PowerCurveFamily &Family, bool PStates) {
  ExecutionSession Session(Spec);
  RunOptions Options;
  Options.Trace = &Trace;
  Options.CurveFamily = &Family;
  Options.Objective = Metric::energy();
  Options.Eas.PStates = PStates;
  SessionReport Report = Session.run(SchemeKind::Eas, Options);
  SchemeTotals Totals;
  Totals.Seconds = Report.Seconds;
  Totals.Joules = Report.Joules;
  Totals.MeanAlpha = Report.MeanAlpha;
  return Totals;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPath = Argc > 1 ? Argv[1] : "BENCH_frontier.json";
  bench::printBanner(
      "bench_frontier: fixed-frequency vs joint (alpha, f) energy per class",
      "cubic power vs ~linear rate: interior P-states win on "
      "memory-leaning classes");

  constexpr unsigned NumPStates = 4;
  constexpr unsigned Invocations = 24;
  PlatformSpec Spec = haswellDesktop();
  Spec.synthesizePStates(NumPStates);
  PowerCurveFamily Family = characterizeFamily(Spec);

  std::vector<ClassRow> Rows;
  for (unsigned I = 0; I != WorkloadClass::NumClasses; ++I) {
    WorkloadClass Class = WorkloadClass::fromIndex(I);
    MicroBenchmark Micro = makeMicroBenchmark(Spec, Class);
    InvocationTrace Trace;
    for (unsigned R = 0; R != Invocations; ++R)
      Trace.push_back({Micro.Kernel, Micro.Iterations});

    ClassRow Row;
    Row.Class = Class;
    Row.Fixed = runScheme(Spec, Trace, Family, /*PStates=*/false);
    Row.Joint = runScheme(Spec, Trace, Family, /*PStates=*/true);
    Rows.push_back(Row);
  }

  std::printf("%-26s %12s %12s %9s %12s %12s\n", "class", "fixed J",
              "joint J", "saved", "fixed s", "joint s");
  unsigned JointWins = 0;
  for (const ClassRow &Row : Rows) {
    bool Wins = Row.Joint.Joules < Row.Fixed.Joules;
    JointWins += Wins;
    std::printf("%-26s %12.2f %12.2f %8.1f%% %12.3f %12.3f%s\n",
                Row.Class.name().c_str(), Row.Fixed.Joules, Row.Joint.Joules,
                Row.energySavingsPct(), Row.Fixed.Seconds, Row.Joint.Seconds,
                Wins ? "  <- joint" : "");
  }
  std::printf("joint wins energy on %u of %u classes\n", JointWins,
              WorkloadClass::NumClasses);

  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out,
               "{\n"
               "  \"bench\": \"frontier\",\n"
               "  \"platform\": \"haswell-desktop\",\n"
               "  \"pstates\": %u,\n"
               "  \"objective\": \"energy\",\n"
               "  \"invocations_per_class\": %u,\n"
               "  \"classes\": [\n",
               NumPStates, Invocations);
  for (size_t I = 0; I != Rows.size(); ++I) {
    const ClassRow &Row = Rows[I];
    std::fprintf(
        Out,
        "    {\"class\": \"%s\",\n"
        "     \"fixed\": {\"joules\": %.4f, \"seconds\": %.5f, "
        "\"edp\": %.5f, \"mean_alpha\": %.3f},\n"
        "     \"joint\": {\"joules\": %.4f, \"seconds\": %.5f, "
        "\"edp\": %.5f, \"mean_alpha\": %.3f},\n"
        "     \"joint_energy_savings_pct\": %.2f}%s\n",
        Row.Class.name().c_str(), Row.Fixed.Joules, Row.Fixed.Seconds,
        Row.Fixed.edp(), Row.Fixed.MeanAlpha, Row.Joint.Joules,
        Row.Joint.Seconds, Row.Joint.edp(), Row.Joint.MeanAlpha,
        Row.energySavingsPct(), I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(Out,
               "  ],\n"
               "  \"joint_wins_energy\": %u\n"
               "}\n",
               JointWins);
  std::fclose(Out);
  std::printf("wrote %s\n", OutPath.c_str());

  // The acceptance bar: the joint search must shift the frontier on at
  // least 3 of the 8 classes, and a warmed fixed-f run must never be
  // beaten BY more than noise the other way (it is the same code path).
  return JointWins >= 3 ? 0 : 1;
}
