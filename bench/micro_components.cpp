//===-- bench/micro_components.cpp - Component micro-benchmarks -----------===//
//
// Part of the ecas project, under the MIT License.
//
// google-benchmark timings of the runtime's hot primitives: the
// Chase-Lev deque, work-stealing parallel_for, the shared work pool,
// polynomial fitting/evaluation, the alpha grid search, and a full
// simulated kernel execution.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/KernelHistory.h"
#include "ecas/core/OperatingPoint.h"
#include "ecas/power/Characterizer.h"
#include "ecas/hw/Presets.h"
#include "ecas/math/PolyFit.h"
#include "ecas/power/MicroBenchmarks.h"
#include "ecas/runtime/ParallelFor.h"
#include "ecas/sim/SimProcessor.h"

#include <benchmark/benchmark.h>

using namespace ecas;

static void BM_DequePushPop(benchmark::State &State) {
  ChaseLevDeque<uint64_t> Deque;
  for (auto _ : State) {
    for (uint64_t I = 0; I != 64; ++I)
      Deque.push(I);
    uint64_t Sum = 0;
    while (auto V = Deque.pop())
      Sum += *V;
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_DequePushPop);

static void BM_DequeSteal(benchmark::State &State) {
  ChaseLevDeque<uint64_t> Deque;
  for (auto _ : State) {
    State.PauseTiming();
    for (uint64_t I = 0; I != 64; ++I)
      Deque.push(I);
    State.ResumeTiming();
    uint64_t Sum = 0;
    while (auto V = Deque.steal())
      Sum += *V;
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * 64);
}
BENCHMARK(BM_DequeSteal);

static void BM_ParallelFor(benchmark::State &State) {
  static ThreadPool Pool(4);
  const uint64_t N = static_cast<uint64_t>(State.range(0));
  for (auto _ : State) {
    std::atomic<uint64_t> Sum{0};
    Pool.parallelFor(0, N, 256, [&Sum](uint64_t Begin, uint64_t End) {
      uint64_t Local = 0;
      for (uint64_t I = Begin; I != End; ++I)
        Local += I;
      Sum.fetch_add(Local, std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(Sum.load());
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_ParallelFor)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

static void BM_WorkPoolGrab(benchmark::State &State) {
  for (auto _ : State) {
    WorkPool Pool(1 << 16);
    uint64_t Seen = 0;
    while (true) {
      IterRange Range = Pool.grab(64);
      if (Range.size() == 0)
        break;
      Seen += Range.size();
    }
    benchmark::DoNotOptimize(Seen);
  }
  State.SetItemsProcessed(State.iterations() * (1 << 16));
}
BENCHMARK(BM_WorkPoolGrab);

static void BM_PolyFitDegree6(benchmark::State &State) {
  std::vector<double> Xs, Ys;
  for (double X = 0.0; X <= 1.0 + 1e-9; X += 0.1) {
    Xs.push_back(X);
    Ys.push_back(45.0 - 10.0 * X + 3.0 * X * X);
  }
  for (auto _ : State) {
    auto Fit = fitPolynomial(Xs, Ys, 6);
    benchmark::DoNotOptimize(Fit->RSquared);
  }
}
BENCHMARK(BM_PolyFitDegree6);

static void BM_AlphaGridSearch(benchmark::State &State) {
  TimeModel Model(1e8, 3e8);
  PowerCurve Curve;
  Curve.Poly = Polynomial({45.0, 20.0, -60.0, 30.0, 5.0, -2.0, 1.0});
  Metric Objective = Metric::edp();
  PStateView View;
  View.Curve = &Curve;
  for (auto _ : State) {
    Decision Choice = chooseOperatingPoint(Model, &View, 1, Objective, 1e7);
    benchmark::DoNotOptimize(Choice.Point.Alpha);
  }
}
BENCHMARK(BM_AlphaGridSearch);

static void BM_SimulatedKernelRun(benchmark::State &State) {
  PlatformSpec Spec = haswellDesktop();
  KernelDesc Kernel = computeBoundMicroKernel();
  for (auto _ : State) {
    SimProcessor Proc(Spec);
    Proc.cpu().enqueue(Kernel, 1e7);
    Proc.gpu().enqueue(Kernel, 1e7);
    Proc.runUntilIdle();
    benchmark::DoNotOptimize(Proc.meter().totalJoules());
  }
}
BENCHMARK(BM_SimulatedKernelRun);

static void BM_EasDecisionOverhead(benchmark::State &State) {
  // Section 5: "Our online profiling along with the sample-weighted
  // accumulation strategy incurs very little overhead, i.e., on average
  // 1-2 microseconds on both the platforms." This times the scheduler's
  // *decision* work per profiled invocation — classification, curve
  // lookup, the alpha grid search, and table-G bookkeeping — i.e.
  // everything except the (real) kernel work the devices do anyway.
  static PlatformSpec Spec = haswellDesktop();
  static PowerCurveSet Curves = Characterizer(Spec).characterize();
  ProfileSample Sample;
  Sample.CpuIterations = 5e4;
  Sample.GpuIterations = 2048;
  Sample.CpuBusySeconds = 5e-4;
  Sample.GpuBusySeconds = 5e-5;
  Sample.ElapsedSeconds = 5e-4;
  Sample.CpuThroughput = 1e8;
  Sample.GpuThroughput = 4e7;
  Sample.MissPerLoadStore = 0.4;
  KernelHistory History;
  Metric Objective = Metric::edp();
  uint64_t Id = 1;
  for (auto _ : State) {
    WorkloadClass Class =
        classifyWorkload(Sample.MissPerLoadStore, 0.05, 0.02);
    PStateView View;
    View.Curve = &Curves.curveFor(Class);
    TimeModel Model(Sample.CpuThroughput, Sample.GpuThroughput);
    Decision Choice = chooseOperatingPoint(Model, &View, 1, Objective, 1e6);
    History.update(Id, [&](KernelRecord &Record) {
      Record.Alpha.addSample(Choice.Point.Alpha, 1e6);
    });
    KernelRecord Record;
    History.lookup(Id, Record);
    benchmark::DoNotOptimize(Record.Alpha.value());
  }
}
BENCHMARK(BM_EasDecisionOverhead);

BENCHMARK_MAIN();
