//===-- examples/custom_metric.cpp - User-defined objectives --------------===//
//
// Part of the ecas project, under the MIT License.
//
// Section 3.2: the scheduler optimizes "any other metric based on the
// combination of package power and execution time". This example defines
// two custom objectives — a battery-lifetime metric that charges a fixed
// platform overhead per second, and a deadline metric that penalizes
// runs beyond a time budget — and shows how the chosen offload ratio
// shifts with the objective on the tablet.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/ExecutionSession.h"
#include "ecas/hw/Presets.h"
#include "ecas/power/Characterizer.h"
#include "ecas/support/Format.h"
#include "ecas/workloads/Registry.h"

#include <cmath>
#include <cstdio>

using namespace ecas;

int main() {
  PlatformSpec Spec = bayTrailTablet();
  PowerCurveSet Curves = Characterizer(Spec).characterize();
  ExecutionSession Session(Spec);
  Workload Mm = *findWorkload(tabletSuite(WorkloadConfig{}), "MM");

  // Battery view: the display and radios burn ~1.5 W regardless, so a
  // run's true battery cost is (P_package + 1.5 W) * T.
  Metric Battery = Metric::custom(
      "battery", [](double Watts, double Seconds) {
        return (Watts + 1.5) * Seconds;
      });

  // Deadline view: energy matters, but finishing after 400 ms is
  // increasingly unacceptable.
  Metric Deadline = Metric::custom(
      "deadline", [](double Watts, double Seconds) {
        double Energy = Watts * Seconds;
        double Overrun = std::max(0.0, Seconds - 0.4);
        return Energy * (1.0 + 50.0 * Overrun * Overrun);
      });

  std::printf("tablet, Matrix Multiply 1024x1024 — objective determines "
              "the split:\n\n");
  std::printf("%-10s %8s %10s %10s %9s %12s\n", "objective", "alpha",
              "time", "energy", "watts", "EAS vs oracle");
  for (const Metric &Objective :
       {Metric::energy(), Metric::edp(), Battery, Deadline}) {
    SessionReport Oracle = Session.runOracle(Mm.Trace, Objective);
    SessionReport Eas = Session.runEas(Mm.Trace, Curves, Objective);
    std::printf("%-10s %8.2f %10s %10s %8.2fW %11.1f%%\n",
                Objective.name().c_str(), Eas.MeanAlpha,
                formatDuration(Eas.Seconds).c_str(),
                formatEnergy(Eas.Joules).c_str(), Eas.averageWatts(),
                100.0 * Oracle.MetricValue / Eas.MetricValue);
  }
  std::printf("\nthe scheduler code never changed — only the f(P, T) "
              "objective did\n");
  return 0;
}
