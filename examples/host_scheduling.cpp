//===-- examples/host_scheduling.cpp - EAS pattern on the host layer ------===//
//
// Part of the ecas project, under the MIT License.
//
// The paper's online-profiling pattern executed for real on the
// OpenCL-style host layer: enqueue a GPU_PROFILE_SIZE chunk on the "GPU"
// queue while the CPU queue chews the rest, read both devices'
// throughput from event profiling timestamps (R_C, R_G), compute
// alpha_PERF = R_G / (R_C + R_G) — Eq. 2 — and run the remainder
// partitioned at that ratio. Everything here is real threads and real
// work; no simulator involved.
//
//===----------------------------------------------------------------------===//

#include "ecas/cl/MiniCl.h"
#include "ecas/core/TimeModel.h"
#include "ecas/support/Flags.h"
#include "ecas/support/Format.h"

#include <atomic>
#include <thread>
#include <chrono>
#include <cmath>
#include <cstdio>

using namespace ecas;
using namespace ecas::cl;

static double wallSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// Keeps the optimizer from deleting the arithmetic.
static void benchmarkSink(double Value) {
  static volatile double Sink;
  Sink = Value;
  (void)Sink;
}

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  const uint64_t N = static_cast<uint64_t>(Args.getInt("n", 2'000'000));
  const uint64_t ProfileChunk =
      static_cast<uint64_t>(Args.getInt("chunk", 131'072));

  // The "GPU" hook runs the same body single-threaded: on a machine
  // with several cores the pool-backed CPU queue wins and alpha lands
  // low; on a single-core machine the two queues tie. Either way the
  // *pattern* is the paper's: measure both devices from event
  // timestamps, derive the ratio, partition. The per-iteration work is
  // a dependency chain of square roots, so neither side can vectorize
  // it away.
  std::atomic<uint64_t> Done{0};
  auto Work = [&Done](uint64_t Begin, uint64_t End) {
    double Acc = 0.0;
    for (uint64_t I = Begin; I != End; ++I) {
      double X = static_cast<double>(I) + 2.0;
      for (int Step = 0; Step != 8; ++Step)
        X = std::sqrt(X + static_cast<double>(Step));
      Acc += X;
    }
    benchmarkSink(Acc);
    Done.fetch_add(End - Begin, std::memory_order_relaxed);
  };
  MiniContext Ctx(4, /*GpuHook=*/Work, /*GpuDispatchLatencySec=*/50e-6);
  MiniKernel Kernel("sqrt-sum", Work);

  // --- Online profiling (Fig. 7, OnlineProfile) -------------------------
  MiniEvent GpuProbe = Ctx.gpuQueue().enqueue(Kernel, 0, ProfileChunk);
  MiniEvent CpuProbe =
      Ctx.cpuQueue().enqueue(Kernel, ProfileChunk, 2 * ProfileChunk);
  GpuProbe.wait();
  CpuProbe.wait();

  double Rg = ProfileChunk / GpuProbe.executionSeconds();
  double Rc = ProfileChunk / CpuProbe.executionSeconds();
  TimeModel Model(Rc, Rg);
  double Alpha = Model.alphaPerf();
  std::printf("profiled:  R_C = %.1f M iters/s, R_G = %.1f M iters/s\n",
              Rc / 1e6, Rg / 1e6);
  std::printf("           GPU dispatch overhead %.1f us (excluded from "
              "R_G, as with OpenCL profiling events)\n",
              GpuProbe.overheadSeconds() * 1e6);
  std::printf("alpha_PERF = R_G / (R_C + R_G) = %.3f\n\n", Alpha);

  // --- Partitioned execution of the remainder ---------------------------
  uint64_t Remaining = N - 2 * ProfileChunk;
  double Start = wallSeconds();
  Ctx.runPartitioned(Kernel, Remaining, Alpha);
  double Hybrid = wallSeconds() - Start;

  // Reference points: each device alone.
  Start = wallSeconds();
  Ctx.cpuQueue().enqueue(Kernel, 0, Remaining).wait();
  double CpuAlone = wallSeconds() - Start;
  Start = wallSeconds();
  Ctx.gpuQueue().enqueue(Kernel, 0, Remaining).wait();
  double GpuAlone = wallSeconds() - Start;

  std::printf("host has %u hardware threads; the CPU queue used a pool "
              "of 4\n",
              std::thread::hardware_concurrency());
  std::printf("remainder (%llu iters):\n",
              static_cast<unsigned long long>(Remaining));
  std::printf("  cpu-alone  %s\n", formatDuration(CpuAlone).c_str());
  std::printf("  gpu-alone  %s\n", formatDuration(GpuAlone).c_str());
  std::printf("  hybrid     %s at alpha %.2f\n",
              formatDuration(Hybrid).c_str(), Alpha);
  double BestSingle = std::min(CpuAlone, GpuAlone);
  std::printf("hybrid vs best single device: %.2fx (expect >1 only when "
              "the host has spare cores for both queues)\n",
              BestSingle / Hybrid);
  std::printf("(every iteration ran exactly once: %s)\n",
              Done.load() >= N + Remaining ? "yes" : "accounting off");
  Args.reportUnknown();
  return 0;
}
