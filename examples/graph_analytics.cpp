//===-- examples/graph_analytics.cpp - Irregular graph workloads ----------===//
//
// Part of the ecas project, under the MIT License.
//
// The paper's motivating domain: irregular graph analytics on a road
// network. This example runs the *real* algorithms (BFS, connected
// components, shortest paths) on a generated road graph, shows the
// frontier dynamics that make them hard to schedule, and then compares
// scheduling schemes on the resulting invocation traces — including the
// Fig. 1 crossover, where best-performance and minimum-energy splits
// disagree.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/ExecutionSession.h"
#include "ecas/hw/Presets.h"
#include "ecas/power/Characterizer.h"
#include "ecas/support/Flags.h"
#include "ecas/support/Format.h"
#include "ecas/workloads/GraphWorkloads.h"

#include <algorithm>
#include <cstdio>

using namespace ecas;

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  WorkloadConfig Config;
  Config.Scale = Args.getDouble("scale", 0.2);

  // Real algorithms on a real (synthetic) road network.
  uint32_t Width, Height;
  graphDimensions(Config, Width, Height);
  RoadGraph Graph = makeRoadGraph(Width, Height, Config.Seed);
  std::printf("road network: %ux%u grid, %u nodes, %zu directed edges\n",
              Width, Height, Graph.numNodes(), Graph.numEdges());

  GraphAlgoResult Bfs = runBfsLevels(Graph, 0);
  GraphAlgoResult Cc = runConnectedComponents(Graph);
  GraphAlgoResult Sssp = runShortestPaths(Graph, 0);
  auto PeakOf = [](const std::vector<double> &Rounds) {
    return *std::max_element(Rounds.begin(), Rounds.end());
  };
  std::printf("BFS : %5zu levels, peak frontier %6.0f, checksum %llu\n",
              Bfs.RoundSizes.size(), PeakOf(Bfs.RoundSizes),
              static_cast<unsigned long long>(Bfs.Checksum));
  std::printf("CC  : %5zu rounds, %llu components\n", Cc.RoundSizes.size(),
              static_cast<unsigned long long>(Cc.Checksum >> 32));
  std::printf("SSSP: %5zu rounds, distance checksum %llu\n\n",
              Sssp.RoundSizes.size(),
              static_cast<unsigned long long>(Sssp.Checksum));

  // Schedule the derived traces on the simulated desktop.
  PlatformSpec Spec = haswellDesktop();
  PowerCurveSet Curves = Characterizer(Spec).characterize();
  ExecutionSession Session(Spec);

  for (const Workload &W : {makeBfsWorkload(Config), makeCcWorkload(Config),
                            makeSsspWorkload(Config)}) {
    Metric Objective = Metric::edp();
    SessionReport Oracle = Session.runOracle(W.Trace, Objective);
    SessionReport Eas = Session.runEas(W.Trace, Curves, Objective);
    SessionReport Gpu = Session.runGpuOnly(W.Trace, Objective);
    std::printf("%-4s EDP: oracle %-9s (alpha %.1f) | EAS %5.1f%% of "
                "oracle (alpha %.2f) | GPU-alone %5.1f%%\n",
                W.Abbrev.c_str(),
                formatString("%.3g", Oracle.MetricValue).c_str(),
                Oracle.MeanAlpha,
                100 * Oracle.MetricValue / Eas.MetricValue, Eas.MeanAlpha,
                100 * Oracle.MetricValue / Gpu.MetricValue);
  }

  // The Fig. 1 crossover on CC: best time vs minimum energy.
  Workload Cc2 = makeCcWorkload(Config);
  double BestPerfAlpha = 0, BestPerfSeconds = 1e30;
  double BestEnergyAlpha = 0, BestEnergyJoules = 1e30;
  for (double Alpha = 0.0; Alpha <= 1.0 + 1e-9; Alpha += 0.1) {
    SessionReport R = Session.runFixedAlpha(
        Cc2.Trace, std::min(Alpha, 1.0), Metric::energy());
    if (R.Seconds < BestPerfSeconds) {
      BestPerfSeconds = R.Seconds;
      BestPerfAlpha = std::min(Alpha, 1.0);
    }
    if (R.Joules < BestEnergyJoules) {
      BestEnergyJoules = R.Joules;
      BestEnergyAlpha = std::min(Alpha, 1.0);
    }
  }
  std::printf("\nCC crossover: best performance at %.0f%% GPU offload, "
              "minimum energy at %.0f%% — \"the lowest energy use or best "
              "performance may require both the CPU and GPU\"\n",
              100 * BestPerfAlpha, 100 * BestEnergyAlpha);
  Args.reportUnknown();
  return 0;
}
