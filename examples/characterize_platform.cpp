//===-- examples/characterize_platform.cpp - Custom SKU flow --------------===//
//
// Part of the ecas project, under the MIT License.
//
// The "new processor arrives" workflow: describe the SKU as a
// PlatformSpec, run the one-time black-box characterization, persist
// spec and curves to disk, and reload them for scheduling — exactly the
// once-per-processor step of Section 2.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/ExecutionSession.h"
#include "ecas/hw/Presets.h"
#include "ecas/power/Characterizer.h"
#include "ecas/support/Flags.h"
#include "ecas/workloads/Registry.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace ecas;

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);

  // A hypothetical next-generation part: start from the desktop preset,
  // widen the GPU, shrink the budget.
  PlatformSpec Spec = haswellDesktop();
  Spec.Name = "custom-48eu-part";
  Spec.Gpu.ExecutionUnits = 48;
  Spec.GpuPower.CubicWattsPerGHz3 *= 2.1; // More EUs, more dynamic power.
  Spec.Pcu.TdpWatts = 65.0;
  std::string Error;
  if (!Spec.validate(Error)) {
    std::fprintf(stderr, "invalid spec: %s\n", Error.c_str());
    return 1;
  }
  std::printf("SKU %s: %u EUs -> %u-way GPU parallelism, profile chunk "
              "%u\n",
              Spec.Name.c_str(), Spec.Gpu.ExecutionUnits,
              Spec.gpuHardwareParallelism(), Spec.defaultGpuProfileSize());

  // One-time characterization, persisted next to the spec.
  Characterizer Probe(Spec);
  PowerCurveSet Curves = Probe.characterize();
  std::string SpecPath = Args.getString("spec-out", "custom_platform.spec");
  std::string CurvePath =
      Args.getString("curves-out", "custom_platform.curves");
  {
    std::ofstream SpecFile(SpecPath);
    SpecFile << Spec.serialize();
    std::ofstream CurveFile(CurvePath);
    CurveFile << Curves.serialize();
  }
  std::printf("wrote %s and %s\n", SpecPath.c_str(), CurvePath.c_str());

  // A later process reloads both and schedules against them.
  auto Slurp = [](const std::string &Path) {
    std::ifstream File(Path);
    std::ostringstream Buffer;
    Buffer << File.rdbuf();
    return Buffer.str();
  };
  ErrorOr<PlatformSpec> LoadedSpec = PlatformSpec::load(Slurp(SpecPath));
  if (!LoadedSpec) {
    std::fprintf(stderr, "spec round-trip failed: %s\n",
                 LoadedSpec.status().message().c_str());
    return 1;
  }
  // A corrupt or truncated curve file is an operational event, not a
  // programming error: report the recoverable status and fall back to
  // re-characterizing the part (it is a pure function of the spec).
  ErrorOr<PowerCurveSet> LoadedCurves =
      PowerCurveSet::load(Slurp(CurvePath), /*RequireComplete=*/true);
  if (!LoadedCurves) {
    std::fprintf(stderr,
                 "cannot load %s (%s: %s); re-characterizing instead\n",
                 CurvePath.c_str(), errCodeName(LoadedCurves.status().code()),
                 LoadedCurves.status().message().c_str());
    LoadedCurves = Characterizer(*LoadedSpec).characterize();
  }
  std::printf("reloaded spec '%s' and %s curve set\n",
              LoadedSpec->Name.c_str(),
              LoadedCurves->complete() ? "complete" : "partial");

  ExecutionSession Session(*LoadedSpec);
  Workload Mm = *findWorkload(desktopSuite(WorkloadConfig{}), "MM");
  Metric Objective = Metric::edp();
  SessionReport Oracle = Session.runOracle(Mm.Trace, Objective);
  SessionReport Eas = Session.runEas(Mm.Trace, *LoadedCurves, Objective);
  std::printf("MM on the custom part: EAS alpha %.2f, %.1f%% of oracle "
              "EDP (the wider GPU pulls work toward alpha=1)\n",
              Eas.MeanAlpha, 100.0 * Oracle.MetricValue / Eas.MetricValue);
  Args.reportUnknown();
  return 0;
}
