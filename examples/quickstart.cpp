//===-- examples/quickstart.cpp - Five-minute tour -------------------------===//
//
// Part of the ecas project, under the MIT License.
//
// The minimal end-to-end flow:
//   1. pick a platform (the paper's Haswell desktop),
//   2. characterize its power behaviour once (eight micro-benchmark
//      sweeps fitted with sixth-order polynomials),
//   3. hand the curves to the energy-aware scheduler and run a workload,
//   4. compare against CPU-alone, GPU-alone, and the exhaustive Oracle.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/ExecutionSession.h"
#include "ecas/hw/Presets.h"
#include "ecas/power/Characterizer.h"
#include "ecas/support/Format.h"
#include "ecas/workloads/Registry.h"

#include <cstdio>

using namespace ecas;

int main() {
  // 1. The platform. Presets reproduce the paper's two machines; custom
  //    SKUs are plain structs (see examples/characterize_platform.cpp).
  PlatformSpec Spec = haswellDesktop();
  std::printf("platform: %s (%u CPU cores, %u GPU EUs, %u-way GPU "
              "parallelism)\n",
              Spec.Name.c_str(), Spec.Cpu.Cores, Spec.Gpu.ExecutionUnits,
              Spec.gpuHardwareParallelism());

  // 2. One-time power characterization (cache the result with
  //    PowerCurveSet::serialize() in a real deployment).
  Characterizer Probe(Spec);
  PowerCurveSet Curves = Probe.characterize();
  std::printf("characterized %s: 8 categories fitted\n",
              Curves.platformName().c_str());

  // 3. A workload: Black-Scholes, 2000 launches of 64K options.
  WorkloadConfig Config;
  Workload Bs = *findWorkload(desktopSuite(Config), "BS");
  std::printf("workload: %s, %u invocations, %.0f total iterations\n\n",
              Bs.Name.c_str(), Bs.numInvocations(), Bs.totalIterations());

  // 4. Run it under every scheme through the unified run() API: one
  //    RunOptions bundle, one SchemeKind per comparison scheme.
  ExecutionSession Session(Spec);
  RunOptions Options;
  Options.Trace = &Bs.Trace;
  Options.Curves = &Curves;
  Options.Objective = Metric::edp();
  SessionReport Oracle = Session.run(SchemeKind::Oracle, Options);
  for (const SessionReport &R :
       {Session.run(SchemeKind::CpuOnly, Options),
        Session.run(SchemeKind::GpuOnly, Options),
        Session.run(SchemeKind::Perf, Options),
        Session.run(SchemeKind::Eas, Options), Oracle}) {
    std::printf("%-7s time %-10s energy %-10s avg %5.1f W  EDP %.4g  "
                "(%.1f%% of oracle, mean alpha %.2f)\n",
                R.Scheme.c_str(), formatDuration(R.Seconds).c_str(),
                formatEnergy(R.Joules).c_str(), R.averageWatts(),
                R.MetricValue, 100.0 * Oracle.MetricValue / R.MetricValue,
                R.MeanAlpha);
  }
  return 0;
}
