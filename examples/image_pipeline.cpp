//===-- examples/image_pipeline.cpp - Hybrid host execution ---------------===//
//
// Part of the ecas project, under the MIT License.
//
// The Concord-style host runtime in action: a Mandelbrot frame rendered
// for real on the work-stealing thread pool, then re-rendered with
// hybridParallelFor, where a pluggable "GPU" executor takes the offloaded
// tail (here backed by a second host thread — on real hardware this hook
// would enqueue an OpenCL NDRange). Finally the simulated platform shows
// what the same split costs in energy.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/ExecutionSession.h"
#include "ecas/hw/Presets.h"
#include "ecas/power/Characterizer.h"
#include "ecas/runtime/ParallelFor.h"
#include "ecas/support/Flags.h"
#include "ecas/support/Format.h"
#include "ecas/workloads/Mandelbrot.h"

#include <chrono>
#include <cstdio>

using namespace ecas;

static double wallSeconds() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

int main(int Argc, char **Argv) {
  Flags Args(Argc, Argv);
  const uint32_t Width = static_cast<uint32_t>(Args.getInt("width", 1024));
  const uint32_t Height = static_cast<uint32_t>(Args.getInt("height", 768));
  const uint32_t MaxIter = 256;
  const uint64_t Pixels = static_cast<uint64_t>(Width) * Height;

  // Reference render (sequential) for validation.
  std::vector<uint16_t> Reference;
  renderMandelbrot(Width, Height, MaxIter, Reference);

  // Per-pixel body shared by every execution mode.
  const double X0 = -2.2, X1 = 1.0, Y0 = -1.28, Y1 = 1.28;
  std::vector<uint16_t> Out(Pixels, 0);
  auto Body = [&](uint64_t Begin, uint64_t End) {
    for (uint64_t Pixel = Begin; Pixel != End; ++Pixel) {
      uint32_t Px = static_cast<uint32_t>(Pixel % Width);
      uint32_t Py = static_cast<uint32_t>(Pixel / Width);
      double Cr = X0 + (X1 - X0) * Px / Width;
      double Ci = Y0 + (Y1 - Y0) * Py / Height;
      double Zr = 0.0, Zi = 0.0;
      uint32_t Iter = 0;
      while (Iter < MaxIter && Zr * Zr + Zi * Zi <= 4.0) {
        double NewZr = Zr * Zr - Zi * Zi + Cr;
        Zi = 2.0 * Zr * Zi + Ci;
        Zr = NewZr;
        ++Iter;
      }
      Out[Pixel] = static_cast<uint16_t>(Iter);
    }
  };

  ThreadPool Pool(4);

  // CPU-only parallel render on the work-stealing pool.
  double Start = wallSeconds();
  parallelFor(Pool, Pixels, Body, /*Grain=*/512);
  double PoolSeconds = wallSeconds() - Start;
  bool PoolMatches = Out == Reference;

  // Hybrid render: 40% of pixels go to the "GPU" executor hook.
  std::fill(Out.begin(), Out.end(), 0);
  Start = wallSeconds();
  HybridResult Hybrid = hybridParallelFor(
      Pool, Pixels, /*Alpha=*/0.4, Body,
      /*Gpu=*/[&Body](uint64_t Begin, uint64_t End) { Body(Begin, End); },
      /*Grain=*/512);
  double HybridSeconds = wallSeconds() - Start;
  bool HybridMatches = Out == Reference;

  std::printf("render %ux%u (%llu pixels), work-stealing pool of %u "
              "threads\n",
              Width, Height, static_cast<unsigned long long>(Pixels),
              Pool.numWorkers());
  std::printf("  pool render   : %-10s %s\n",
              formatDuration(PoolSeconds).c_str(),
              PoolMatches ? "matches reference" : "MISMATCH");
  std::printf("  hybrid render : %-10s %s (CPU %llu px, GPU-hook %llu "
              "px, %llu steals)\n",
              formatDuration(HybridSeconds).c_str(),
              HybridMatches ? "matches reference" : "MISMATCH",
              static_cast<unsigned long long>(Hybrid.CpuIterations),
              static_cast<unsigned long long>(Hybrid.GpuIterations),
              static_cast<unsigned long long>(Pool.totalSteals()));

  // What does the same workload cost on the simulated desktop?
  PlatformSpec Spec = haswellDesktop();
  PowerCurveSet Curves = Characterizer(Spec).characterize();
  ExecutionSession Session(Spec);
  Workload Mb = makeMandelbrotWorkload(WorkloadConfig{});
  Metric Objective = Metric::energy();
  SessionReport Eas = Session.runEas(Mb.Trace, Curves, Objective);
  SessionReport Cpu = Session.runCpuOnly(Mb.Trace, Objective);
  std::printf("\nsimulated desktop, full 7680x6144 frame:\n");
  std::printf("  CPU-alone: %s, %s\n", formatDuration(Cpu.Seconds).c_str(),
              formatEnergy(Cpu.Joules).c_str());
  std::printf("  EAS      : %s, %s (alpha %.2f) — %.0f%% of CPU-alone "
              "energy\n",
              formatDuration(Eas.Seconds).c_str(),
              formatEnergy(Eas.Joules).c_str(), Eas.MeanAlpha,
              100.0 * Eas.Joules / Cpu.Joules);
  Args.reportUnknown();
  return (PoolMatches && HybridMatches) ? 0 : 1;
}
