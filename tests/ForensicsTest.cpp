//===-- tests/ForensicsTest.cpp - Flight recorder + incident forensics -----===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The forensics layer of DESIGN.md §16, tested piece by piece: the
// flight-recorder rings (wrap, drop accounting, multi-thread merge),
// the anomaly detector's edge cases (cold baselines, counter resets,
// coalesced triggers), the incident writer's commit protocol (manifest
// last, retention, rate limit, torn-bundle rejection), the control
// socket's line protocol, and the last-gasp crash write — the latter in
// a forked child that really dies on a fatal signal.
//
//===----------------------------------------------------------------------===//

#include "ecas/obs/Anomaly.h"
#include "ecas/obs/FlightRecorder.h"
#include "ecas/obs/Incident.h"
#include "ecas/obs/MetricNames.h"
#include "ecas/obs/Metrics.h"
#include "ecas/service/Control.h"
#include "ecas/support/AtomicFile.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "ecas/obs/LastGasp.h"

using namespace ecas;
using namespace ecas::obs;

namespace {

/// Per-test scratch directory (created fresh, best-effort cleaned).
struct ScratchDir {
  explicit ScratchDir(const char *Name)
      : Path(::testing::TempDir() + "ecas-forensics-" + Name) {
    wipe();
    ::mkdir(Path.c_str(), 0755);
  }
  ~ScratchDir() { wipe(); }
  void wipe() {
    for (const std::string &Bundle : listBundles(Path))
      wipeFlat(Bundle);
    wipeFlat(Path);
  }
  // No recursion needed: bundles are flat and their file set is fixed.
  static void wipeFlat(const std::string &Dir) {
    for (const char *Name :
         {"MANIFEST.txt", "trace.json", "decisions.jsonl", "metrics.prom",
          "metrics.json", "tableg.txt", "status.txt", "lastgasp.txt"})
      (void)::unlink((Dir + "/" + Name).c_str());
    (void)::rmdir(Dir.c_str());
  }
  std::string Path;
};

DecisionRecord makeDecision(uint64_t KernelId, double Seconds) {
  DecisionRecord Rec;
  Rec.KernelId = KernelId;
  Rec.MeasuredSeconds = Seconds;
  Rec.TableHit = true;
  return Rec;
}

/// One-shot raw client for the control socket's line protocol.
std::string controlRequest(const std::string &SocketPath,
                           const std::string &Command) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  EXPECT_LT(SocketPath.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  if (::connect(Fd, reinterpret_cast<const sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    ::close(Fd);
    return "<connect failed>";
  }
  std::string Line = Command + "\n";
  EXPECT_EQ(::send(Fd, Line.data(), Line.size(), 0),
            static_cast<ssize_t>(Line.size()));
  std::string Response;
  char Buffer[512];
  for (;;) {
    ssize_t N = ::recv(Fd, Buffer, sizeof(Buffer), 0);
    if (N <= 0)
      break;
    Response.append(Buffer, static_cast<size_t>(N));
  }
  ::close(Fd);
  return Response;
}

} // namespace

//===----------------------------------------------------------------------===//
// FlightRecorder rings
//===----------------------------------------------------------------------===//

TEST(FlightRecorder, EventRingKeepsNewestAndCountsDrops) {
  FlightRecorder Flight(/*EventsPerThread=*/8, /*DecisionCapacity=*/4);
  for (int I = 0; I != 20; ++I)
    Flight.instant("test", "tick", static_cast<double>(I));

  FlightSnapshot Snap = Flight.drain();
  EXPECT_EQ(Snap.EventsRecorded, 20u);
  EXPECT_EQ(Snap.EventsDropped, 12u);
  ASSERT_EQ(Snap.Trace.Events.size(), 8u);
  // The survivors are the newest 12..19, in record order.
  for (size_t I = 0; I != Snap.Trace.Events.size(); ++I)
    EXPECT_DOUBLE_EQ(Snap.Trace.Events[I].Value,
                     static_cast<double>(12 + I));
  EXPECT_EQ(Flight.eventsRecorded(), 20u);
}

TEST(FlightRecorder, DecisionRingWrapsOldestFirst) {
  FlightRecorder Flight(/*EventsPerThread=*/8, /*DecisionCapacity=*/4);
  for (uint64_t I = 0; I != 10; ++I)
    Flight.recordDecision(makeDecision(I, 0.001 * static_cast<double>(I)));

  FlightSnapshot Snap = Flight.drain();
  EXPECT_EQ(Snap.DecisionsRecorded, 10u);
  EXPECT_EQ(Snap.DecisionsDropped, 6u);
  ASSERT_EQ(Snap.Decisions.size(), 4u);
  // Oldest-first within the surviving tail, sequences stamped densely.
  for (size_t I = 0; I != 4; ++I) {
    EXPECT_EQ(Snap.Decisions[I].KernelId, 6 + I);
    if (I) {
      EXPECT_EQ(Snap.Decisions[I].Sequence,
                Snap.Decisions[I - 1].Sequence + 1);
    }
  }
}

TEST(FlightRecorder, CountersFoldIntoTotals) {
  FlightRecorder Flight(/*EventsPerThread=*/64, /*DecisionCapacity=*/4);
  for (int I = 0; I != 10; ++I)
    Flight.count("work-items", 2.0);
  FlightSnapshot Snap = Flight.drain();
  EXPECT_DOUBLE_EQ(Snap.Trace.counterTotal("work-items"), 20.0);
}

TEST(FlightRecorder, MultiThreadedRecordingMergesInTimeOrder) {
  FlightRecorder Flight(/*EventsPerThread=*/256, /*DecisionCapacity=*/64);
  constexpr int Threads = 4;
  constexpr int PerThread = 100;
  std::vector<std::thread> Workers;
  for (int T = 0; T != Threads; ++T)
    Workers.emplace_back([&Flight] {
      for (int I = 0; I != PerThread; ++I)
        Flight.instant("worker", "step", static_cast<double>(I));
    });
  for (std::thread &W : Workers)
    W.join();

  FlightSnapshot Snap = Flight.drain();
  EXPECT_EQ(Snap.EventsRecorded,
            static_cast<uint64_t>(Threads * PerThread));
  EXPECT_EQ(Snap.EventsDropped, 0u);
  ASSERT_EQ(Snap.Trace.Events.size(),
            static_cast<size_t>(Threads * PerThread));
  for (size_t I = 1; I < Snap.Trace.Events.size(); ++I)
    EXPECT_LE(Snap.Trace.Events[I - 1].HostSeconds,
              Snap.Trace.Events[I].HostSeconds)
        << "drain must merge per-thread rings in time order";
}

//===----------------------------------------------------------------------===//
// AnomalyDetector edge cases
//===----------------------------------------------------------------------===//

TEST(AnomalyDetector, ColdBaselinesStaySilent) {
  MetricsRegistry Registry;
  Histogram &TimeErr = Registry.histogram(
      names::ModelTimeRelError, linearBuckets(0.0, 0.05, 20));
  // A handful of terrible samples — but fewer than the baseline floor,
  // so the drift rule must stay cold rather than fire on noise.
  for (int I = 0; I != 8; ++I)
    TimeErr.record(0.9);

  AnomalyDetector Detector;
  std::vector<AnomalyTrigger> Triggers =
      Detector.evaluate(Registry.snapshot(), 0.0);
  EXPECT_TRUE(Triggers.empty());
  EXPECT_FALSE(Detector.driftBaselineFrozen("time"));
  EXPECT_FALSE(Detector.latencyBaselineFrozen());
}

TEST(AnomalyDetector, BurnRateFiresOnNewMissesOnly) {
  MetricsRegistry Registry;
  Counter &Misses = Registry.counter(names::ServiceDeadlineMissTotal,
                                     {{"sla", "SLA0"}});
  AnomalyDetector Detector;
  // First sighting establishes the baseline — pre-existing misses are
  // old news, not an anomaly.
  Misses.add(3.0);
  EXPECT_TRUE(Detector.evaluate(Registry.snapshot(), 0.0).empty());

  Misses.add(1.0);
  std::vector<AnomalyTrigger> Triggers =
      Detector.evaluate(Registry.snapshot(), 1.0);
  ASSERT_EQ(Triggers.size(), 1u);
  EXPECT_EQ(Triggers[0].Rule, "sla0-burn-rate");
  EXPECT_DOUBLE_EQ(Triggers[0].Observed, 1.0);

  // No movement, no trigger.
  EXPECT_TRUE(Detector.evaluate(Registry.snapshot(), 2.0).empty());
}

TEST(AnomalyDetector, CounterResetRebasesWithoutFiring) {
  AnomalyDetector Detector;
  {
    MetricsRegistry Old;
    Old.counter(names::ServiceDeadlineMissTotal, {{"sla", "SLA0"}})
        .add(5.0);
    Old.counter(names::QuarantinesTotal).add(4.0);
    EXPECT_TRUE(Detector.evaluate(Old.snapshot(), 0.0).empty());
  }
  // The process behind the registry restarted: both counters now read
  // lower than the detector's remembered baseline. Re-base silently.
  MetricsRegistry Fresh;
  Counter &Misses =
      Fresh.counter(names::ServiceDeadlineMissTotal, {{"sla", "SLA0"}});
  Counter &Quarantines = Fresh.counter(names::QuarantinesTotal);
  Misses.add(1.0);
  Quarantines.add(1.0);
  EXPECT_TRUE(Detector.evaluate(Fresh.snapshot(), 1.0).empty());

  // And forward movement from the new base fires normally again.
  Misses.add(1.0);
  Quarantines.add(1.0);
  std::vector<AnomalyTrigger> Triggers =
      Detector.evaluate(Fresh.snapshot(), 2.0);
  ASSERT_EQ(Triggers.size(), 2u);
}

TEST(AnomalyDetector, DriftFiresAfterBaselineFreezes) {
  MetricsRegistry Registry;
  Histogram &TimeErr = Registry.histogram(
      names::ModelTimeRelError, linearBuckets(0.0, 0.05, 20));
  AnomalyDetector Detector;

  for (int I = 0; I != 40; ++I)
    TimeErr.record(0.02);
  EXPECT_TRUE(Detector.evaluate(Registry.snapshot(), 0.0).empty());
  ASSERT_TRUE(Detector.driftBaselineFrozen("time"));

  // The model goes bad: new windows mean far above
  // max(2 * baseline, baseline + 0.05).
  for (int I = 0; I != 40; ++I)
    TimeErr.record(0.5);
  std::vector<AnomalyTrigger> Triggers =
      Detector.evaluate(Registry.snapshot(), 1.0);
  ASSERT_EQ(Triggers.size(), 1u);
  EXPECT_EQ(Triggers[0].Rule, "model-drift-time");
  EXPECT_GT(Triggers[0].Observed, Triggers[0].Threshold);
}

TEST(AnomalyDetector, HistogramShrinkResetsDriftState) {
  AnomalyDetector Detector;
  {
    MetricsRegistry Registry;
    Histogram &TimeErr = Registry.histogram(
        names::ModelTimeRelError, linearBuckets(0.0, 0.05, 20));
    for (int I = 0; I != 40; ++I)
      TimeErr.record(0.02);
    EXPECT_TRUE(Detector.evaluate(Registry.snapshot(), 0.0).empty());
    ASSERT_TRUE(Detector.driftBaselineFrozen("time"));
  }
  // A fresh registry's histogram has fewer observations than the frozen
  // baseline ever saw — the old baseline is not comparable, so the rule
  // goes cold instead of judging the new process by a dead one's curve.
  MetricsRegistry Fresh;
  Histogram &TimeErr = Fresh.histogram(names::ModelTimeRelError,
                                       linearBuckets(0.0, 0.05, 20));
  for (int I = 0; I != 4; ++I)
    TimeErr.record(0.9);
  EXPECT_TRUE(Detector.evaluate(Fresh.snapshot(), 1.0).empty());
  EXPECT_FALSE(Detector.driftBaselineFrozen("time"));
}

TEST(AnomalyDetector, LatencyP99RegressionFires) {
  MetricsRegistry Registry;
  Histogram &Latency = Registry.histogram(
      names::InvocationSeconds, logBuckets(1e-5, 4.0, 16));
  AnomalyDetector Detector;

  for (int I = 0; I != 100; ++I)
    Latency.record(1e-4);
  EXPECT_TRUE(Detector.evaluate(Registry.snapshot(), 0.0).empty());
  ASSERT_TRUE(Detector.latencyBaselineFrozen());

  // Swamp the distribution with samples 4 orders of magnitude slower;
  // the p99 climbs far past 3x the frozen baseline.
  for (int I = 0; I != 2000; ++I)
    Latency.record(1.0);
  std::vector<AnomalyTrigger> Triggers =
      Detector.evaluate(Registry.snapshot(), 1.0);
  ASSERT_EQ(Triggers.size(), 1u);
  EXPECT_EQ(Triggers[0].Rule, "latency-p99-regression");
}

//===----------------------------------------------------------------------===//
// IncidentWriter: commit protocol, retention, rate limit
//===----------------------------------------------------------------------===//

TEST(IncidentWriter, BundleRoundTripsThroughValidator) {
  ScratchDir Scratch("roundtrip");
  FlightRecorder Flight;
  Flight.instant("test", "event", 1.0);
  Flight.recordDecision(makeDecision(7, 0.002));
  MetricsRegistry Registry;
  Registry.counter(names::QuarantinesTotal).add(1.0);

  IncidentConfig Config;
  Config.Dir = Scratch.Path;
  IncidentWriter Writer(Config);

  IncidentInputs Inputs;
  Inputs.Flight = &Flight;
  Inputs.Metrics = &Registry;
  Inputs.TableDigest = "tableg entries=1\n";
  Inputs.ServiceStatus = "ecas-statusz v1\nend\n";

  // Two rules firing on one evaluation coalesce into ONE bundle whose
  // manifest lists both trigger lines.
  AnomalyTrigger A;
  A.Rule = "quarantine-entry";
  A.Metric = names::QuarantinesTotal;
  A.Threshold = 1.0;
  A.Observed = 1.0;
  AnomalyTrigger B;
  B.Rule = "sla0-burn-rate";
  B.Metric = names::ServiceDeadlineMissTotal;
  B.Threshold = 1.0;
  B.Observed = 2.0;
  ErrorOr<std::string> Bundle = Writer.write(Inputs, {A, B}, 10.0);
  ASSERT_TRUE(Bundle.ok()) << Bundle.status().toString();
  EXPECT_EQ(Writer.bundlesWritten(), 1u);

  ASSERT_TRUE(validateBundle(*Bundle).ok());
  std::string Manifest;
  bool Existed = false;
  ASSERT_TRUE(
      readFileBytes(*Bundle + "/MANIFEST.txt", Manifest, Existed).ok());
  EXPECT_NE(Manifest.find("reason anomaly"), std::string::npos);
  EXPECT_NE(Manifest.find("trigger quarantine-entry"), std::string::npos);
  EXPECT_NE(Manifest.find("trigger sla0-burn-rate"), std::string::npos);
  EXPECT_NE(Manifest.find("file trace.json"), std::string::npos);
  EXPECT_NE(Manifest.find("file metrics.prom"), std::string::npos);
}

TEST(IncidentWriter, RateLimitHoldsAndManualDumpBypasses) {
  ScratchDir Scratch("ratelimit");
  IncidentConfig Config;
  Config.Dir = Scratch.Path;
  Config.MinIntervalSec = 1.0;
  IncidentWriter Writer(Config);
  IncidentInputs Inputs;
  Inputs.ServiceStatus = "ecas-statusz v1\nend\n";

  ASSERT_TRUE(Writer.write(Inputs, {}, 0.0).ok());
  // A second anomaly inside the window is Overloaded, not an error...
  ErrorOr<std::string> Limited = Writer.write(Inputs, {}, 0.5);
  ASSERT_FALSE(Limited.ok());
  EXPECT_EQ(Limited.status().code(), ErrCode::Overloaded);
  // ...a manual dump goes through regardless...
  ASSERT_TRUE(Writer.write(Inputs, {}, 0.5, /*Force=*/true).ok());
  // ...and the window re-opens once the interval passes.
  ASSERT_TRUE(Writer.write(Inputs, {}, 2.0).ok());
  EXPECT_EQ(Writer.bundlesWritten(), 3u);
}

TEST(IncidentWriter, RetentionEvictsOldestFirst) {
  ScratchDir Scratch("retention");
  IncidentConfig Config;
  Config.Dir = Scratch.Path;
  Config.MaxBundles = 3;
  IncidentWriter Writer(Config);
  IncidentInputs Inputs;
  Inputs.TableDigest = "tableg entries=0\n";

  for (int I = 0; I != 5; ++I)
    ASSERT_TRUE(
        Writer.write(Inputs, {}, static_cast<double>(I), /*Force=*/true)
            .ok());

  std::vector<std::string> Bundles = listBundles(Scratch.Path);
  ASSERT_EQ(Bundles.size(), 3u);
  // The newest three sequences survive, in chronological order.
  EXPECT_NE(Bundles[0].find("incident-00000002"), std::string::npos);
  EXPECT_NE(Bundles[1].find("incident-00000003"), std::string::npos);
  EXPECT_NE(Bundles[2].find("incident-00000004"), std::string::npos);
  for (const std::string &Bundle : Bundles)
    EXPECT_TRUE(validateBundle(Bundle).ok());
}

TEST(IncidentWriter, SequenceNumberingResumesFromDisk) {
  ScratchDir Scratch("resume");
  IncidentConfig Config;
  Config.Dir = Scratch.Path;
  IncidentInputs Inputs;
  Inputs.TableDigest = "tableg entries=0\n";
  {
    IncidentWriter First(Config);
    ASSERT_TRUE(First.write(Inputs, {}, 0.0, true).ok());
    ASSERT_TRUE(First.write(Inputs, {}, 1.0, true).ok());
  }
  // A writer born over existing bundles numbers past them, so eviction
  // order stays chronological across restarts.
  IncidentWriter Second(Config);
  ErrorOr<std::string> Bundle = Second.write(Inputs, {}, 2.0, true);
  ASSERT_TRUE(Bundle.ok());
  EXPECT_NE(Bundle->find("incident-00000002"), std::string::npos);
}

TEST(IncidentWriter, TornBundlesAreRejected) {
  ScratchDir Scratch("torn");
  IncidentConfig Config;
  Config.Dir = Scratch.Path;
  IncidentWriter Writer(Config);
  FlightRecorder Flight;
  Flight.instant("test", "event");
  IncidentInputs Inputs;
  Inputs.Flight = &Flight;
  Inputs.ServiceStatus = "ecas-statusz v1\nend\n";
  ErrorOr<std::string> Bundle = Writer.write(Inputs, {}, 0.0, true);
  ASSERT_TRUE(Bundle.ok());
  ASSERT_TRUE(validateBundle(*Bundle).ok());

  // Truncate a listed file: byte count mismatch.
  ASSERT_TRUE(writeFileAtomic(*Bundle + "/status.txt", "short").ok());
  Status Truncated = validateBundle(*Bundle);
  ASSERT_FALSE(Truncated.ok());
  EXPECT_EQ(Truncated.code(), ErrCode::Truncated);

  // Restore the size but poison the structured payload: same length,
  // but trace.json no longer parses.
  ASSERT_TRUE(
      writeFileAtomic(*Bundle + "/status.txt", Inputs.ServiceStatus).ok());
  std::string Trace;
  bool Existed = false;
  ASSERT_TRUE(readFileBytes(*Bundle + "/trace.json", Trace, Existed).ok());
  std::string Garbage(Trace.size(), 'x');
  ASSERT_TRUE(writeFileAtomic(*Bundle + "/trace.json", Garbage).ok());
  EXPECT_FALSE(validateBundle(*Bundle).ok());

  // A deleted file is flat-out corrupt.
  ASSERT_TRUE(writeFileAtomic(*Bundle + "/trace.json", Trace).ok());
  ASSERT_EQ(::unlink((*Bundle + "/status.txt").c_str()), 0);
  Status Missing = validateBundle(*Bundle);
  ASSERT_FALSE(Missing.ok());
  EXPECT_EQ(Missing.code(), ErrCode::CorruptData);

  // And a manifest without its end marker was torn mid-write.
  ASSERT_TRUE(writeFileAtomic(*Bundle + "/status.txt",
                              Inputs.ServiceStatus)
                  .ok());
  std::string Manifest;
  ASSERT_TRUE(
      readFileBytes(*Bundle + "/MANIFEST.txt", Manifest, Existed).ok());
  size_t End = Manifest.rfind("end\n");
  ASSERT_NE(End, std::string::npos);
  ASSERT_TRUE(writeFileAtomic(*Bundle + "/MANIFEST.txt",
                              Manifest.substr(0, End))
                  .ok());
  Status NoEnd = validateBundle(*Bundle);
  ASSERT_FALSE(NoEnd.ok());
  EXPECT_EQ(NoEnd.code(), ErrCode::Truncated);
}

//===----------------------------------------------------------------------===//
// ControlServer line protocol
//===----------------------------------------------------------------------===//

TEST(ControlServer, ServesHandlersAndRejectsUnknownCommands) {
  std::string SocketPath = ::testing::TempDir() + "ecas-ctl-test.sock";
  service::ControlServer Server;
  Server.setHandler("statusz", [] { return std::string("status-ok\n"); });
  Server.setHandler("metricz", [] { return std::string("eas_x 1\n"); });
  ASSERT_TRUE(Server.start(SocketPath).ok());
  ASSERT_TRUE(Server.running());

  EXPECT_EQ(controlRequest(SocketPath, "statusz"), "status-ok\n");
  EXPECT_EQ(controlRequest(SocketPath, "metricz"), "eas_x 1\n");
  std::string Unknown = controlRequest(SocketPath, "bogus");
  EXPECT_NE(Unknown.find("err unknown command"), std::string::npos);

  Server.stop();
  EXPECT_FALSE(Server.running());
  // stop() unlinks the socket: a fresh connect must fail.
  EXPECT_EQ(controlRequest(SocketPath, "statusz"), "<connect failed>");
}

TEST(ControlServer, HandlersAreImmutableAfterStart) {
  std::string SocketPath = ::testing::TempDir() + "ecas-ctl-frozen.sock";
  service::ControlServer Server;
  Server.setHandler("ping", [] { return std::string("pong\n"); });
  ASSERT_TRUE(Server.start(SocketPath).ok());
  // Registration after start is rejected — the serve thread reads the
  // handler table without a lock, so it must never change underneath.
  Server.setHandler("late", [] { return std::string("nope\n"); });
  EXPECT_NE(controlRequest(SocketPath, "late").find("err unknown"),
            std::string::npos);
  EXPECT_EQ(controlRequest(SocketPath, "ping"), "pong\n");
  Server.stop();
}

//===----------------------------------------------------------------------===//
// Last gasp: render/validate and the real crash write
//===----------------------------------------------------------------------===//

TEST(LastGasp, RenderedDocumentValidatesAndTornOnesDoNot) {
  FlightRecorder Flight;
  Flight.instant("test", "event", 1.0);
  for (uint64_t I = 0; I != 5; ++I)
    Flight.recordDecision(makeDecision(I, 0.001));

  LastGaspContext Ctx;
  Ctx.UptimeSec = 12.5;
  Ctx.ServiceStatus = "ecas-statusz v1\nuptime_sec 12.5\nend\n";
  Ctx.Flight = &Flight;
  Ctx.MaxDecisionLines = 3;
  std::string Doc = renderLastGasp(Ctx);

  ASSERT_TRUE(validateLastGasp(Doc).ok());
  EXPECT_NE(Doc.find("uptime_sec 12.500"), std::string::npos);
  EXPECT_NE(Doc.find("decisions recorded=5 dropped=0 tail=3"),
            std::string::npos);
  // Exactly the requested tail, newest records, as JSON lines.
  size_t DecisionLines = 0;
  for (size_t Pos = Doc.find("decision {"); Pos != std::string::npos;
       Pos = Doc.find("decision {", Pos + 1))
    ++DecisionLines;
  EXPECT_EQ(DecisionLines, 3u);

  Status NoEnd = validateLastGasp(Doc.substr(0, Doc.size() - 4));
  ASSERT_FALSE(NoEnd.ok());
  EXPECT_EQ(NoEnd.code(), ErrCode::Truncated);
  Status BadHeader = validateLastGasp("garbage v9\nend\n");
  ASSERT_FALSE(BadHeader.ok());
  EXPECT_EQ(BadHeader.code(), ErrCode::VersionMismatch);
}

TEST(LastGasp, FatalSignalWritesPreSerializedDocument) {
  std::string Path = ::testing::TempDir() + "ecas-lastgasp-abort.txt";
  (void)::unlink(Path.c_str());

  // The whole point of the machinery is surviving a real fatal signal,
  // so run it in a child that genuinely dies on SIGABRT.
  pid_t Pid = fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    LastGaspContext Ctx;
    Ctx.UptimeSec = 1.0;
    Ctx.ServiceStatus = "ecas-statusz v1\nuptime_sec 1.0\nend\n";
    std::string Doc = renderLastGasp(Ctx);
    if (!LastGasp::instance().arm(Path).ok())
      _exit(99);
    LastGasp::instance().refresh(Doc);
    std::abort(); // handler writes the buffer, then the signal kills us
  }
  int WaitStatus = 0;
  ASSERT_EQ(waitpid(Pid, &WaitStatus, 0), Pid);
  ASSERT_TRUE(WIFSIGNALED(WaitStatus))
      << "child must die on the re-raised signal, not exit cleanly";
  EXPECT_EQ(WTERMSIG(WaitStatus), SIGABRT);

  std::string Written;
  bool Existed = false;
  ASSERT_TRUE(readFileBytes(Path, Written, Existed).ok());
  ASSERT_TRUE(Existed) << "crash handler did not write the document";
  EXPECT_TRUE(validateLastGasp(Written).ok());
  EXPECT_NE(Written.find("uptime_sec 1.000"), std::string::npos);
  (void)::unlink(Path.c_str());
}

TEST(LastGasp, ArmRejectsUnusablePaths) {
  EXPECT_FALSE(LastGasp::instance().arm("").ok());
  std::string TooLong(4096, 'p');
  EXPECT_FALSE(LastGasp::instance().arm(TooLong).ok());
}
