//===-- tests/RaceRegressionTest.cpp - Latent-race regressions --------------===//
//
// Part of the ecas project, under the MIT License.
//
// Regression tests for the two latent findings surfaced while annotating
// the tree for Clang's thread-safety analysis (DESIGN.md §9):
//
//  1. MiniEvent's profiling timestamps were read without the event lock,
//     racing the queue worker's writes. The accessors now lock, so
//     polling them while a command completes must be clean under TSan.
//
//  2. KernelHistory::clear() retired unlinked chains while still holding
//     a shard lock, nesting KernelHistory.Retired inside
//     KernelHistory.Shard and inverting the documented hierarchy. The
//     rewrite unlinks under the shard locks and retires after releasing
//     them; concurrent clear()/update()/entries() must neither deadlock
//     nor trip the lock-order validator.
//
//===----------------------------------------------------------------------===//

#include "ecas/cl/MiniCl.h"
#include "ecas/core/KernelHistory.h"
#include "ecas/support/LockOrder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace ecas;
using namespace ecas::cl;

// Readers hammer every timestamp accessor while commands run to
// completion. Before the fix the loads were unsynchronized with the
// worker's stores; TSan (tsan preset) flagged the pair.
TEST(RaceRegression, EventTimestampsRaceFreeDuringCompletion) {
  CommandQueue Queue(
      "test", [](const RangeBody &Body, uint64_t B, uint64_t E) {
        Body(B, E);
      });
  for (int Round = 0; Round != 20; ++Round) {
    std::atomic<bool> Stop{false};
    MiniKernel Kernel("spin", [](uint64_t B, uint64_t E) {
      uint64_t Acc = 0;
      for (uint64_t I = B; I != E; ++I)
        Acc += I;
      volatile uint64_t Sink = Acc;
      (void)Sink;
    });
    MiniEvent Event = Queue.enqueue(Kernel, 0, 50'000);
    std::thread Reader([&] {
      double Acc = 0.0;
      while (!Stop.load(std::memory_order_acquire)) {
        Acc += Event.queuedSeconds() + Event.submitSeconds() +
               Event.startSeconds() + Event.endSeconds() +
               Event.executionSeconds() + Event.overheadSeconds();
      }
      EXPECT_GE(Acc, 0.0);
    });
    Event.wait();
    Stop.store(true, std::memory_order_release);
    Reader.join();
    EXPECT_EQ(Event.status(), cl::Status::Success);
    // Complete events expose a consistent window.
    EXPECT_GE(Event.endSeconds(), Event.startSeconds());
    EXPECT_GE(Event.startSeconds(), Event.queuedSeconds());
  }
}

// clear() racing writers and snapshotters: must terminate (no deadlock)
// and, in ECAS_LOCK_ORDER builds, must not report a Shard -> Retired
// inversion on the global validator.
TEST(RaceRegression, HistoryClearDoesNotNestRetiredInsideShard) {
#if defined(ECAS_LOCK_ORDER)
  LockOrderValidator::global().reset();
#endif
  KernelHistory History;
  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    uint64_t K = 0;
    while (!Stop.load(std::memory_order_acquire)) {
      History.update(K++ % 64, [](KernelRecord &Rec) {
        Rec.Invocations += 1;
      });
    }
  });
  std::thread Snapshotter([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      (void)History.entries();
    }
  });
  for (int I = 0; I != 200; ++I)
    History.clear();
  Stop.store(true, std::memory_order_release);
  Writer.join();
  Snapshotter.join();
  EXPECT_EQ(History.size(), History.entries().size());
#if defined(ECAS_LOCK_ORDER)
  for (const auto &V : LockOrderValidator::global().violations())
    ADD_FAILURE() << V.Message;
  LockOrderValidator::global().reset();
#endif
}
