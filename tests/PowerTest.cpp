//===-- tests/PowerTest.cpp - power/ unit tests ----------------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/hw/Presets.h"
#include "ecas/power/Characterizer.h"
#include "ecas/power/MicroBenchmarks.h"
#include "ecas/power/PowerCurve.h"

#include <gtest/gtest.h>

using namespace ecas;

TEST(PowerCurve, EvaluationClampsToPositive) {
  PowerCurve Curve;
  Curve.Poly = Polynomial({-5.0}); // Pathological all-negative fit.
  EXPECT_GT(Curve.powerAt(0.5), 0.0);
}

TEST(PowerCurveSet, SetAndLookup) {
  PowerCurveSet Set;
  EXPECT_FALSE(Set.complete());
  for (unsigned I = 0; I != WorkloadClass::NumClasses; ++I) {
    PowerCurve Curve;
    Curve.Class = WorkloadClass::fromIndex(I);
    Curve.Poly = Polynomial({static_cast<double>(I) + 1.0});
    Curve.RSquared = 0.9;
    Set.setCurve(Curve);
  }
  EXPECT_TRUE(Set.complete());
  for (unsigned I = 0; I != WorkloadClass::NumClasses; ++I)
    EXPECT_DOUBLE_EQ(Set.curveFor(WorkloadClass::fromIndex(I)).powerAt(0.3),
                     I + 1.0);
}

TEST(PowerCurveSet, SerializeRoundTrip) {
  PowerCurveSet Set;
  Set.setPlatformName("test-platform");
  PowerCurve Curve;
  Curve.Class = WorkloadClass::fromIndex(5);
  Curve.Poly = Polynomial({45.0, -3.0, 0.25, 1e-3});
  Curve.RSquared = 0.987;
  Set.setCurve(Curve);

  auto Restored = PowerCurveSet::deserialize(Set.serialize());
  ASSERT_TRUE(Restored.has_value());
  EXPECT_EQ(Restored->platformName(), "test-platform");
  ASSERT_TRUE(Restored->hasCurve(WorkloadClass::fromIndex(5)));
  const PowerCurve &Back = Restored->curveFor(WorkloadClass::fromIndex(5));
  EXPECT_DOUBLE_EQ(Back.RSquared, 0.987);
  for (double Alpha = 0.0; Alpha <= 1.0; Alpha += 0.25)
    EXPECT_DOUBLE_EQ(Back.powerAt(Alpha), Curve.powerAt(Alpha));
  EXPECT_FALSE(Restored->hasCurve(WorkloadClass::fromIndex(0)));
}

TEST(PowerCurveSet, DeserializeRejectsGarbage) {
  EXPECT_FALSE(PowerCurveSet::deserialize("curve x = 1 2 3").has_value());
  EXPECT_FALSE(PowerCurveSet::deserialize("curve 99 = 1 r2 1").has_value());
  EXPECT_FALSE(
      PowerCurveSet::deserialize("curve 1 = a b r2 1").has_value());
}

TEST(MicroBenchmarks, BaseKernelsAreValidAndOpposed) {
  KernelDesc Compute = computeBoundMicroKernel();
  KernelDesc Memory = memoryBoundMicroKernel();
  EXPECT_TRUE(Compute.valid());
  EXPECT_TRUE(Memory.valid());
  EXPECT_LT(Compute.memoryIntensity(), 0.33);
  EXPECT_GT(Memory.memoryIntensity(), 0.33);
}

TEST(MicroBenchmarks, ProbeRatesArePositiveAndOrdered) {
  PlatformSpec Spec = haswellDesktop();
  DeviceRates Rates = probeDeviceRates(Spec, computeBoundMicroKernel());
  EXPECT_GT(Rates.CpuItersPerSec, 0.0);
  EXPECT_GT(Rates.GpuItersPerSec, 0.0);
  // The desktop GPU outruns the CPU on regular compute (2-3x).
  EXPECT_GT(Rates.GpuItersPerSec, 1.5 * Rates.CpuItersPerSec);
  EXPECT_LT(Rates.GpuItersPerSec, 5.0 * Rates.CpuItersPerSec);
}

TEST(MicroBenchmarks, TabletRatesAreComparable) {
  PlatformSpec Spec = bayTrailTablet();
  DeviceRates Rates = probeDeviceRates(Spec, computeBoundMicroKernel());
  // Section 1: "on the Bay Trail, the processors have similar
  // performance".
  EXPECT_GT(Rates.GpuItersPerSec, 0.8 * Rates.CpuItersPerSec);
  EXPECT_LT(Rates.GpuItersPerSec, 3.0 * Rates.CpuItersPerSec);
}

/// Property sweep: every category's micro-benchmark must land its
/// single-device durations in the advertised short/long buckets.
class MicroDurations : public ::testing::TestWithParam<unsigned> {};

TEST_P(MicroDurations, DurationsMatchCategory) {
  WorkloadClass Class = WorkloadClass::fromIndex(GetParam());
  PlatformSpec Spec = haswellDesktop();
  MicroBenchmark Micro = makeMicroBenchmark(Spec, Class);
  ASSERT_TRUE(Micro.Kernel.valid());
  ASSERT_GT(Micro.Iterations, 0.0);

  DeviceRates Rates = probeDeviceRates(Spec, Micro.Kernel);
  double CpuSeconds = Micro.Iterations / Rates.CpuItersPerSec;
  double GpuSeconds = Micro.Iterations / Rates.GpuItersPerSec;
  if (Class.CpuDuration == DurationClass::Short)
    EXPECT_LT(CpuSeconds, 0.1) << Class.name();
  else
    EXPECT_GT(CpuSeconds, 0.1) << Class.name();
  if (Class.GpuDuration == DurationClass::Short)
    EXPECT_LT(GpuSeconds, 0.1) << Class.name();
  else
    EXPECT_GT(GpuSeconds, 0.1) << Class.name();
}

INSTANTIATE_TEST_SUITE_P(AllCategories, MicroDurations,
                         ::testing::Range(0u, 8u));

TEST(Characterizer, MeasuresSaneEndpoints) {
  PlatformSpec Spec = haswellDesktop();
  Characterizer Probe(Spec);
  WorkloadClass LongCompute = WorkloadClass::fromIndex(0); // C L L
  MicroBenchmark Micro = makeMicroBenchmark(Spec, LongCompute);
  PowerSamplePoint CpuAlone = Probe.measureAt(Micro, 0.0);
  PowerSamplePoint GpuAlone = Probe.measureAt(Micro, 1.0);
  // Paper calibration: ~45 W CPU-alone, ~30 W GPU-alone.
  EXPECT_NEAR(CpuAlone.AvgPackageWatts, 45.0, 4.0);
  EXPECT_NEAR(GpuAlone.AvgPackageWatts, 30.0, 4.0);
}

TEST(Characterizer, FitsCategoryWithGoodQuality) {
  PlatformSpec Spec = haswellDesktop();
  Characterizer Probe(Spec);
  std::vector<PowerSamplePoint> Samples;
  PowerCurve Curve =
      Probe.characterizeCategory(WorkloadClass::fromIndex(0), &Samples);
  EXPECT_EQ(Samples.size(), 11u);
  EXPECT_EQ(Curve.Poly.degree(), 6u);
  EXPECT_GT(Curve.RSquared, 0.90);
  // The curve should reproduce the sweep samples closely.
  for (const PowerSamplePoint &Point : Samples)
    EXPECT_NEAR(Curve.powerAt(Point.Alpha), Point.AvgPackageWatts,
                0.15 * Point.AvgPackageWatts + 1.0);
}

TEST(Characterizer, FullCharacterizationIsComplete) {
  // Tablet: smaller curves, faster sweep.
  PlatformSpec Spec = bayTrailTablet();
  Characterizer Probe(Spec);
  PowerCurveSet Set = Probe.characterize();
  EXPECT_TRUE(Set.complete());
  EXPECT_EQ(Set.platformName(), Spec.Name);
  // Round-trip through serialization.
  auto Restored = PowerCurveSet::deserialize(Set.serialize());
  ASSERT_TRUE(Restored.has_value());
  EXPECT_TRUE(Restored->complete());
}

TEST(Characterizer, CoarseSweepLowersFitOrder) {
  PlatformSpec Spec = bayTrailTablet();
  CharacterizerConfig Config;
  Config.AlphaStep = 0.25; // 5 samples: degree must drop to 4.
  Characterizer Probe(Spec, Config);
  PowerCurve Curve = Probe.characterizeCategory(WorkloadClass::fromIndex(0));
  EXPECT_LE(Curve.Poly.degree(), 4u);
}

TEST(Characterizer, DeterministicAcrossRuns) {
  PlatformSpec Spec = bayTrailTablet();
  Characterizer Probe(Spec);
  WorkloadClass Class = WorkloadClass::fromIndex(0);
  PowerCurve A = Probe.characterizeCategory(Class);
  PowerCurve B = Probe.characterizeCategory(Class);
  ASSERT_EQ(A.Poly.coefficients().size(), B.Poly.coefficients().size());
  for (size_t I = 0; I != A.Poly.coefficients().size(); ++I)
    EXPECT_DOUBLE_EQ(A.Poly.coefficients()[I], B.Poly.coefficients()[I]);
}

TEST(Characterizer, DesktopMemoryCurvesRunHotterAtCpuEnd) {
  // Fig. 5's platform signature: at alpha = 0 the memory-bound
  // categories sit well above the compute-bound ones.
  PlatformSpec Spec = haswellDesktop();
  Characterizer Probe(Spec);
  WorkloadClass ComputeLL = WorkloadClass::fromIndex(0); // C L L
  WorkloadClass MemoryLL = WorkloadClass::fromIndex(4);  // M L L
  PowerCurve Compute = Probe.characterizeCategory(ComputeLL);
  PowerCurve Memory = Probe.characterizeCategory(MemoryLL);
  EXPECT_GT(Memory.powerAt(0.0), Compute.powerAt(0.0) + 5.0);
}

TEST(Characterizer, TabletMemoryCurvesRunCoolerAtCpuEnd) {
  // Fig. 6's inversion: the tablet's memory-bound curves sit *below*
  // the compute-bound ones.
  PlatformSpec Spec = bayTrailTablet();
  Characterizer Probe(Spec);
  PowerCurve Compute =
      Probe.characterizeCategory(WorkloadClass::fromIndex(0));
  PowerCurve Memory =
      Probe.characterizeCategory(WorkloadClass::fromIndex(4));
  EXPECT_LT(Memory.powerAt(0.0), Compute.powerAt(0.0));
}

TEST(MicroBenchmarks, ShortCategoriesRepeatWithGaps) {
  PlatformSpec Spec = haswellDesktop();
  MicroBenchmark Short =
      makeMicroBenchmark(Spec, WorkloadClass::fromIndex(3)); // C S S
  MicroBenchmark Long =
      makeMicroBenchmark(Spec, WorkloadClass::fromIndex(0)); // C L L
  EXPECT_GT(Short.Repetitions, 1u);
  EXPECT_GT(Short.GapSeconds, 0.0);
  EXPECT_EQ(Long.Repetitions, 1u);
}

TEST(MicroBenchmarks, AdaptiveShapingHandlesExoticSku) {
  // A GPU monster: fixed shaping cannot make it the "long" device, so
  // the escalation loop must kick in rather than abort.
  PlatformSpec Spec = haswellDesktop();
  Spec.Gpu.ExecutionUnits = 96;
  WorkloadClass CpuBiased; // memory / cpu-short / gpu-long
  CpuBiased.Bound = Boundedness::Memory;
  CpuBiased.CpuDuration = DurationClass::Short;
  CpuBiased.GpuDuration = DurationClass::Long;
  MicroBenchmark Micro = makeMicroBenchmark(Spec, CpuBiased);
  DeviceRates Rates = probeDeviceRates(Spec, Micro.Kernel);
  EXPECT_LT(Micro.Iterations / Rates.CpuItersPerSec, 0.1);
  EXPECT_GT(Micro.Iterations / Rates.GpuItersPerSec, 0.1);
}

TEST(PowerCurveSet, LoadNamesTheOffendingLine) {
  // Missing "r2 <value>" tail: the file was cut short mid-write.
  ErrorOr<PowerCurveSet> Result =
      PowerCurveSet::load("platform = p\ncurve 1 = 40 2 3\n");
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrCode::Truncated);
  EXPECT_NE(Result.status().message().find("line 2"), std::string::npos);
}

TEST(PowerCurveSet, LoadDistinguishesErrorCauses) {
  // Unknown workload-class tag.
  ErrorOr<PowerCurveSet> Result =
      PowerCurveSet::load("curve 12 = 40 r2 0.9\n");
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrCode::OutOfRange);

  // Non-finite coefficient: NaN would sail through powerAt() otherwise.
  Result = PowerCurveSet::load("curve 2 = 40 nan 3 r2 0.9\n");
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrCode::OutOfRange);

  // Unparsable coefficient is a syntax problem, not a range problem.
  Result = PowerCurveSet::load("curve 2 = 40 two r2 0.9\n");
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrCode::ParseError);
}

TEST(PowerCurveSet, RequireCompleteFlagsMissingCategories) {
  PowerCurveSet Partial;
  PowerCurve Curve;
  Curve.Class = WorkloadClass::fromIndex(3);
  Curve.Poly = Polynomial({42.0});
  Curve.RSquared = 0.9;
  Partial.setCurve(Curve);
  std::string Text = Partial.serialize();

  // A partial set is fine for incremental characterization...
  EXPECT_TRUE(PowerCurveSet::load(Text).ok());
  // ...but a deployment load demanding all 8 categories must fail with
  // a recoverable, descriptive error (the re-characterize signal).
  ErrorOr<PowerCurveSet> Result =
      PowerCurveSet::load(Text, /*RequireComplete=*/true);
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrCode::Incomplete);
  EXPECT_NE(Result.status().message().find("1 of 8"), std::string::npos);
}

namespace {

/// A complete curve set whose constant term encodes (State, Class) so a
/// round-trip mix-up between states or categories is detectable.
PowerCurveSet stampedSet(unsigned State) {
  PowerCurveSet Set;
  Set.setPlatformName("family-platform");
  for (unsigned I = 0; I != WorkloadClass::NumClasses; ++I) {
    PowerCurve Curve;
    Curve.Class = WorkloadClass::fromIndex(I);
    Curve.Poly = Polynomial({100.0 * State + I + 1.0, -0.5});
    Curve.RSquared = 0.95;
    Set.setCurve(Curve);
  }
  return Set;
}

} // namespace

TEST(PowerCurveFamily, SerializeRoundTripAllStates) {
  PowerCurveFamily Family;
  for (unsigned State = 0; State != 3; ++State)
    Family.setStateCurves(State, stampedSet(State));
  ASSERT_TRUE(Family.complete());

  ErrorOr<PowerCurveFamily> Back =
      PowerCurveFamily::load(Family.serialize(), /*RequireComplete=*/true);
  ASSERT_TRUE(Back.ok()) << Back.status().toString();
  EXPECT_EQ(Back->numPStates(), 3u);
  EXPECT_EQ(Back->platformName(), "family-platform");
  for (unsigned State = 0; State != 3; ++State)
    for (unsigned I = 0; I != WorkloadClass::NumClasses; ++I)
      EXPECT_DOUBLE_EQ(
          Back->stateCurves(State)
              .curveFor(WorkloadClass::fromIndex(I))
              .powerAt(0.0),
          100.0 * State + I + 1.0);
}

TEST(PowerCurveFamily, LegacySingleSetTextLoadsAsStateZero) {
  // A cached pre-DVFS characterization has no "pstate =" delimiter; it
  // must load as a one-state family so old deployments keep working.
  std::string Legacy = stampedSet(0).serialize();
  ASSERT_EQ(Legacy.find("pstate"), std::string::npos);
  ErrorOr<PowerCurveFamily> Family = PowerCurveFamily::load(Legacy);
  ASSERT_TRUE(Family.ok()) << Family.status().toString();
  EXPECT_EQ(Family->numPStates(), 1u);
  EXPECT_DOUBLE_EQ(Family->stateCurves(0)
                       .curveFor(WorkloadClass::fromIndex(4))
                       .powerAt(0.0),
                   5.0);
}

TEST(PowerCurveFamily, FromSingleWrapsLegacySet) {
  PowerCurveFamily Family = PowerCurveFamily::fromSingle(stampedSet(0));
  EXPECT_EQ(Family.numPStates(), 1u);
  EXPECT_TRUE(Family.complete());
  EXPECT_EQ(Family.platformName(), "family-platform");
}

TEST(Characterizer, FamilyStatesMeasureDistinctPower) {
  // Characterizing a 3-state ladder must produce genuinely different
  // P(alpha) per state — capped clocks draw less — with full speed the
  // hottest, or the joint search would have nothing to trade off.
  PlatformSpec Spec = haswellDesktop();
  Spec.synthesizePStates(3);
  CharacterizerConfig Config;
  Config.AlphaStep = 0.5;
  Config.PolyDegree = 2;
  PowerCurveFamily Family = characterizeFamily(Spec, Config);
  ASSERT_EQ(Family.numPStates(), 3u);
  ASSERT_TRUE(Family.complete());
  WorkloadClass CC = classifyWorkload(0.01, 0.01, 0.01);
  double P0 = Family.stateCurves(0).curveFor(CC).powerAt(0.5);
  double P1 = Family.stateCurves(1).curveFor(CC).powerAt(0.5);
  double P2 = Family.stateCurves(2).curveFor(CC).powerAt(0.5);
  EXPECT_GT(P0, P1);
  EXPECT_GT(P1, P2);
}
