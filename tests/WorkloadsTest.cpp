//===-- tests/WorkloadsTest.cpp - workloads/ unit tests --------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/workloads/BarnesHut.h"
#include "ecas/workloads/BlackScholes.h"
#include "ecas/workloads/FaceDetect.h"
#include "ecas/workloads/GraphWorkloads.h"
#include "ecas/workloads/Mandelbrot.h"
#include "ecas/workloads/MatrixMultiply.h"
#include "ecas/workloads/NBody.h"
#include "ecas/workloads/RayTracer.h"
#include "ecas/workloads/Registry.h"
#include "ecas/workloads/Seismic.h"
#include "ecas/workloads/SkipList.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

using namespace ecas;

namespace {
/// Small inputs keep the real algorithms fast in unit tests.
WorkloadConfig tinyConfig() {
  WorkloadConfig Config;
  Config.Scale = 0.01;
  return Config;
}
} // namespace

TEST(Generators, RoadGraphIsSymmetricCsr) {
  RoadGraph Graph = makeRoadGraph(20, 15, 7);
  EXPECT_EQ(Graph.numNodes(), 300u);
  ASSERT_EQ(Graph.Offsets.size(), 301u);
  EXPECT_EQ(Graph.Offsets.back(), Graph.Targets.size());
  // Undirected: every edge appears in both directions with equal weight.
  for (uint32_t V = 0; V != Graph.numNodes(); ++V) {
    for (uint32_t E = Graph.Offsets[V]; E != Graph.Offsets[V + 1]; ++E) {
      uint32_t U = Graph.Targets[E];
      ASSERT_LT(U, Graph.numNodes());
      bool FoundReverse = false;
      for (uint32_t E2 = Graph.Offsets[U]; E2 != Graph.Offsets[U + 1];
           ++E2)
        if (Graph.Targets[E2] == V &&
            Graph.Weights[E2] == Graph.Weights[E]) {
          FoundReverse = true;
          break;
        }
      ASSERT_TRUE(FoundReverse);
    }
  }
}

TEST(Generators, Deterministic) {
  RoadGraph A = makeRoadGraph(10, 10, 3);
  RoadGraph B = makeRoadGraph(10, 10, 3);
  EXPECT_EQ(A.Targets, B.Targets);
  RoadGraph C = makeRoadGraph(10, 10, 4);
  EXPECT_NE(A.Targets, C.Targets);
}

TEST(GraphAlgos, BfsOnTinyGrid) {
  // Full 3x3 grid (seed chosen irrelevant; use edge-keep probability by
  // retrying until connected is unnecessary at this size: check what we
  // get instead).
  RoadGraph Graph = makeRoadGraph(3, 3, 11);
  GraphAlgoResult Result = runBfsLevels(Graph, 0);
  EXPECT_FALSE(Result.RoundSizes.empty());
  EXPECT_DOUBLE_EQ(Result.RoundSizes.front(), 1.0); // Source frontier.
  double Visited = 0;
  for (double Size : Result.RoundSizes)
    Visited += Size;
  EXPECT_LE(Visited, 9.0);
}

TEST(GraphAlgos, BfsDepthSumMatchesManualOnFullGrid) {
  // Build a graph where no edges were dropped by seeding until full;
  // easier: accept drops and verify per-node depth consistency instead.
  RoadGraph Graph = makeRoadGraph(16, 16, 5);
  GraphAlgoResult A = runBfsLevels(Graph, 0);
  GraphAlgoResult B = runBfsLevels(Graph, 0);
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_EQ(A.RoundSizes, B.RoundSizes);
}

TEST(GraphAlgos, ConnectedComponentsCountsPartitions) {
  RoadGraph Graph = makeRoadGraph(12, 12, 9);
  GraphAlgoResult Result = runConnectedComponents(Graph);
  uint64_t Components = Result.Checksum >> 32;
  EXPECT_GE(Components, 1u);
  EXPECT_LT(Components, Graph.numNodes());
  // Sum of active sets >= node count (every node activates at least
  // once).
  double Activations = 0;
  for (double Size : Result.RoundSizes)
    Activations += Size;
  EXPECT_GE(Activations, static_cast<double>(Graph.numNodes()));
}

TEST(GraphAlgos, ShortestPathsDominatedByBfsDepth) {
  RoadGraph Graph = makeRoadGraph(10, 10, 13);
  GraphAlgoResult Bfs = runBfsLevels(Graph, 0);
  GraphAlgoResult Sssp = runShortestPaths(Graph, 0);
  // Weighted distance >= hop count (weights >= 1).
  EXPECT_GE(Sssp.Checksum, Bfs.Checksum);
  EXPECT_FALSE(Sssp.RoundSizes.empty());
}

TEST(BarnesHut, ForceChecksumStable) {
  BodySet Bodies = makeBodies(500, 21);
  uint64_t A = runBarnesHutStep(Bodies);
  uint64_t B = runBarnesHutStep(Bodies);
  EXPECT_EQ(A, B);
  EXPECT_GT(A, 0u);
}

TEST(BarnesHut, ApproachesDirectSumForSmallTheta) {
  BodySet Bodies = makeBodies(200, 33);
  // Theta -> 0 degenerates to direct O(n^2) summation.
  uint64_t Approx = runBarnesHutStep(Bodies, 0.4f);
  uint64_t Exact = runBarnesHutStep(Bodies, 1e-6f);
  double Ratio = static_cast<double>(Approx) / static_cast<double>(Exact);
  EXPECT_NEAR(Ratio, 1.0, 0.05);
}

TEST(Mandelbrot, KnownInteriorAndExterior) {
  std::vector<uint16_t> Raster;
  renderMandelbrot(64, 64, 100, Raster);
  ASSERT_EQ(Raster.size(), 64u * 64u);
  // The region includes the main cardioid: some pixel hits MaxIter.
  EXPECT_NE(std::find(Raster.begin(), Raster.end(), 100),
            Raster.end());
  // And the corners escape immediately-ish.
  EXPECT_LT(Raster.front(), 5);
}

TEST(Mandelbrot, ChecksumScalesWithResolution) {
  uint64_t Small = mandelbrotChecksum(32, 32, 64);
  uint64_t Large = mandelbrotChecksum(64, 64, 64);
  EXPECT_GT(Large, Small * 3); // ~4x pixels.
}

TEST(SkipListStructure, InsertAndContains) {
  SkipList List;
  EXPECT_TRUE(List.insert(5));
  EXPECT_TRUE(List.insert(1));
  EXPECT_TRUE(List.insert(9));
  EXPECT_FALSE(List.insert(5)); // Duplicate.
  EXPECT_EQ(List.size(), 3u);
  EXPECT_TRUE(List.contains(1));
  EXPECT_TRUE(List.contains(5));
  EXPECT_TRUE(List.contains(9));
  EXPECT_FALSE(List.contains(2));
}

TEST(SkipListStructure, ManyKeysAllFound) {
  std::vector<uint64_t> Keys = makeKeys(20000, 17);
  SkipList List;
  for (uint64_t Key : Keys)
    List.insert(Key);
  std::set<uint64_t> Unique(Keys.begin(), Keys.end());
  EXPECT_EQ(List.size(), Unique.size());
  for (uint64_t Key : Keys)
    ASSERT_TRUE(List.contains(Key));
  EXPECT_GT(List.height(), 8u); // Probabilistically certain at 20k keys.
}

TEST(SkipListStructure, BuildAndProbeCountsHits) {
  std::vector<uint64_t> Keys = makeKeys(5000, 23);
  uint64_t Hits = buildAndProbeSkipList(Keys);
  // Every key hits; the +1 miss stream almost never does.
  EXPECT_GE(Hits, 5000u);
  EXPECT_LT(Hits, 5100u);
}

TEST(BlackScholesPricing, KnownValue) {
  // S=100, K=100, T=1, sigma=0.2, r=0.05 -> C ~= 10.45.
  float Price = blackScholesCall(100.0f, 100.0f, 1.0f, 0.2f, 0.05f);
  EXPECT_NEAR(Price, 10.45f, 0.05f);
}

TEST(BlackScholesPricing, MonotoneInSpot) {
  float Low = blackScholesCall(90.0f, 100.0f, 1.0f, 0.2f, 0.05f);
  float High = blackScholesCall(110.0f, 100.0f, 1.0f, 0.2f, 0.05f);
  EXPECT_LT(Low, High);
}

TEST(BlackScholesPricing, BatchChecksumDeterministic) {
  OptionBatch Batch = makeOptions(10000, 3);
  EXPECT_EQ(blackScholesChecksum(Batch), blackScholesChecksum(Batch));
}

TEST(MatrixMultiplyKernel, IdentityProduct) {
  const uint32_t N = 16;
  std::vector<float> A(N * N, 0.0f), I(N * N, 0.0f), C;
  for (uint32_t R = 0; R != N; ++R) {
    I[R * N + R] = 1.0f;
    for (uint32_t Col = 0; Col != N; ++Col)
      A[R * N + Col] = static_cast<float>(R * N + Col);
  }
  multiplyMatrices(A, I, C, N);
  EXPECT_EQ(C, A);
}

TEST(MatrixMultiplyKernel, ChecksumDeterministic) {
  EXPECT_EQ(matrixMultiplyChecksum(48, 5), matrixMultiplyChecksum(48, 5));
  EXPECT_NE(matrixMultiplyChecksum(48, 5), matrixMultiplyChecksum(48, 6));
}

TEST(NBodyKernel, MomentumBoundedDrift) {
  BodySet Bodies = makeBodies(256, 9);
  std::vector<float> Vx(256, 0.0f), Vy(256, 0.0f), Vz(256, 0.0f);
  uint64_t Check = stepNBody(Bodies, Vx, Vy, Vz);
  EXPECT_GT(Check, 0u);
  // Velocities acquired something.
  double Speed = 0.0;
  for (size_t I = 0; I != 256; ++I)
    Speed += std::fabs(Vx[I]) + std::fabs(Vy[I]) + std::fabs(Vz[I]);
  EXPECT_GT(Speed, 0.0);
}

TEST(RayTracerKernel, RendersDeterministically) {
  SphereScene Scene = makeSphereScene(32, 3, 41);
  uint64_t A = renderScene(Scene, 64, 48);
  uint64_t B = renderScene(Scene, 64, 48);
  EXPECT_EQ(A, B);
  EXPECT_GT(A, 0u);
}

TEST(RayTracerKernel, MoreLightsBrighter) {
  SphereScene Dim = makeSphereScene(32, 1, 41);
  SphereScene Bright = Dim;
  Bright.Lx.assign(5, 0.0f);
  Bright.Ly.assign(5, 8.0f);
  Bright.Lz.assign(5, 10.0f);
  EXPECT_GE(renderScene(Bright, 64, 48), renderScene(Dim, 64, 48) / 2);
}

TEST(SeismicKernel, WavePropagates) {
  SeismicState State = makeSeismicState(64, 64);
  uint64_t Early = runSeismic(State, 1);
  SeismicState Fresh = makeSeismicState(64, 64);
  uint64_t Later = runSeismic(Fresh, 30);
  EXPECT_NE(Early, Later);
  // The wavefront spreads: nonzero stress away from the impulse.
  unsigned NonZero = 0;
  for (float S : Fresh.Stress)
    if (std::fabs(S) > 1e-6f)
      ++NonZero;
  EXPECT_GT(NonZero, 100u);
}

TEST(FaceDetectKernel, IntegralImageCorners) {
  GrayImage Image;
  Image.Width = 4;
  Image.Height = 3;
  Image.Pixels = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  std::vector<uint64_t> Integral;
  integralImage(Image, Integral);
  ASSERT_EQ(Integral.size(), 5u * 4u);
  EXPECT_EQ(Integral.back(), 78u); // Sum 1..12.
  EXPECT_EQ(Integral[1 * 5 + 1], 1u);
}

TEST(FaceDetectKernel, CascadeRejectsMonotonically) {
  GrayImage Image = makeTestImage(256, 192, 7);
  Cascade Short = makeSyntheticCascade(2, 99);
  Cascade Long = makeSyntheticCascade(8, 99);
  // More stages can only reject more windows.
  EXPECT_GE(detectFaces(Image, Short), detectFaces(Image, Long));
}

TEST(Registry, DesktopSuiteMatchesTable1) {
  std::vector<Workload> Suite = desktopSuite(tinyConfig());
  ASSERT_EQ(Suite.size(), 12u);
  std::set<std::string> Abbrevs;
  unsigned Irregular = 0;
  for (const Workload &W : Suite) {
    Abbrevs.insert(W.Abbrev);
    EXPECT_FALSE(W.Trace.empty()) << W.Abbrev;
    EXPECT_GT(W.totalIterations(), 0.0) << W.Abbrev;
    if (!W.Regular)
      ++Irregular;
  }
  // Table 1: seven irregular (BH, BFS, CC, FD, MB, SL, SP), five regular.
  EXPECT_EQ(Irregular, 7u);
  EXPECT_EQ(Abbrevs.size(), 12u);
  for (const char *Abbrev :
       {"BH", "BFS", "CC", "FD", "MB", "SL", "SP", "BS", "MM", "NB", "RT",
        "SM"})
    EXPECT_TRUE(Abbrevs.count(Abbrev)) << Abbrev;
}

TEST(Registry, TabletSuiteHasSevenWorkloads) {
  std::vector<Workload> Suite = tabletSuite(tinyConfig());
  ASSERT_EQ(Suite.size(), 7u);
  for (const Workload &W : Suite)
    EXPECT_TRUE(W.OnTablet) << W.Abbrev;
}

TEST(Registry, InvocationCountsMatchTable1Shape) {
  std::vector<Workload> Suite = desktopSuite(tinyConfig());
  auto Count = [&Suite](const char *Abbrev) {
    const Workload *W = findWorkload(Suite, Abbrev);
    return W ? W->numInvocations() : 0u;
  };
  // Single-invocation kernels.
  for (const char *Abbrev : {"BH", "MB", "SL", "MM", "RT"})
    EXPECT_EQ(Count(Abbrev), 1u) << Abbrev;
  // Fixed multi-invocation counts.
  EXPECT_EQ(Count("BS"), 2000u);
  EXPECT_EQ(Count("NB"), 101u);
  EXPECT_EQ(Count("SM"), 100u);
  EXPECT_EQ(Count("FD"), 132u);
  // Graph workloads: derived from the real algorithm; many rounds.
  EXPECT_GT(Count("BFS"), 50u);
  EXPECT_GT(Count("CC"), 50u);
  EXPECT_GT(Count("SP"), 50u);
}

TEST(Registry, FindWorkloadIsCaseInsensitive) {
  std::vector<Workload> Suite = tabletSuite(tinyConfig());
  EXPECT_NE(findWorkload(Suite, "mm"), nullptr);
  EXPECT_NE(findWorkload(Suite, "MM"), nullptr);
  EXPECT_EQ(findWorkload(Suite, "nope"), nullptr);
}

TEST(Registry, KernelIdsAreUniqueAcrossSuite) {
  std::vector<Workload> Suite = desktopSuite(tinyConfig());
  std::set<uint64_t> Ids;
  for (const Workload &W : Suite) {
    ASSERT_FALSE(W.Trace.empty());
    Ids.insert(W.Trace.front().Kernel.Id);
    EXPECT_NE(W.Trace.front().Kernel.Id, 0u) << W.Abbrev;
  }
  EXPECT_EQ(Ids.size(), Suite.size());
}

TEST(Registry, AllKernelDescriptorsValid) {
  for (const Workload &W : desktopSuite(tinyConfig()))
    for (const KernelInvocation &Invocation : W.Trace)
      ASSERT_TRUE(Invocation.Kernel.valid()) << W.Abbrev;
}

//===----------------------------------------------------------------------===//
// Host-parallel consistency: the real kernels produce identical results
// on the work-stealing runtime and sequentially.
//===----------------------------------------------------------------------===//

#include "ecas/runtime/ParallelFor.h"

TEST(HostParallel, BlackScholesMatchesSequential) {
  OptionBatch Batch = makeOptions(40000, 77);
  std::vector<float> Sequential;
  priceBatch(Batch, Sequential);

  std::vector<float> Parallel(Batch.size(), 0.0f);
  ThreadPool Pool(4);
  Pool.parallelFor(0, Batch.size(), 256, [&](uint64_t B, uint64_t E) {
    for (uint64_t I = B; I != E; ++I)
      Parallel[I] = blackScholesCall(Batch.Spot[I], Batch.Strike[I],
                                     Batch.Years[I], Batch.Volatility[I],
                                     Batch.Rate[I]);
  });
  EXPECT_EQ(Parallel, Sequential);
}

TEST(HostParallel, MandelbrotMatchesSequential) {
  const uint32_t W = 128, H = 96, MaxIter = 128;
  std::vector<uint16_t> Sequential;
  renderMandelbrot(W, H, MaxIter, Sequential);

  // Same math, row-parallel on the pool.
  std::vector<uint16_t> Parallel(Sequential.size(), 0);
  ThreadPool Pool(4);
  const double X0 = -2.2, X1 = 1.0, Y0 = -1.28, Y1 = 1.28;
  Pool.parallelFor(0, static_cast<uint64_t>(W) * H, 64,
                   [&](uint64_t Begin, uint64_t End) {
    for (uint64_t Pixel = Begin; Pixel != End; ++Pixel) {
      uint32_t Px = static_cast<uint32_t>(Pixel % W);
      uint32_t Py = static_cast<uint32_t>(Pixel / W);
      double Cr = X0 + (X1 - X0) * Px / W;
      double Ci = Y0 + (Y1 - Y0) * Py / H;
      double Zr = 0.0, Zi = 0.0;
      uint32_t Iter = 0;
      while (Iter < MaxIter && Zr * Zr + Zi * Zi <= 4.0) {
        double NewZr = Zr * Zr - Zi * Zi + Cr;
        Zi = 2.0 * Zr * Zi + Ci;
        Zr = NewZr;
        ++Iter;
      }
      Parallel[Pixel] = static_cast<uint16_t>(Iter);
    }
  });
  EXPECT_EQ(Parallel, Sequential);
}

TEST(HostParallel, SeismicFramesAreOrderSensitiveButDeterministic) {
  SeismicState A = makeSeismicState(48, 48);
  SeismicState B = makeSeismicState(48, 48);
  EXPECT_EQ(runSeismic(A, 10), runSeismic(B, 10));
}

//===----------------------------------------------------------------------===//
// Trace invariants across scales and seeds.
//===----------------------------------------------------------------------===//

TEST(TraceInvariants, GraphTraceScalesWithSqrt) {
  WorkloadConfig Small;
  Small.Scale = 0.04;
  WorkloadConfig Large;
  Large.Scale = 0.16;
  Workload WSmall = makeBfsWorkload(Small);
  Workload WLarge = makeBfsWorkload(Large);
  // Totals follow sqrt(scale): 0.16/0.04 -> 2x.
  EXPECT_NEAR(WLarge.totalIterations() / WSmall.totalIterations(), 2.0,
              0.3);
  // Levels follow the grid side: also ~2x.
  EXPECT_NEAR(static_cast<double>(WLarge.numInvocations()) /
                  WSmall.numInvocations(),
              2.0, 0.4);
}

TEST(TraceInvariants, SeedChangesGraphTraceShape) {
  WorkloadConfig A;
  A.Scale = 0.05;
  WorkloadConfig B = A;
  B.Seed = 0xfeed;
  Workload WA = makeBfsWorkload(A);
  Workload WB = makeBfsWorkload(B);
  bool AnyDifferent = WA.numInvocations() != WB.numInvocations();
  for (size_t I = 0;
       !AnyDifferent && I < std::min(WA.Trace.size(), WB.Trace.size());
       ++I)
    AnyDifferent = WA.Trace[I].Iterations != WB.Trace[I].Iterations;
  EXPECT_TRUE(AnyDifferent);
}

TEST(TraceInvariants, NonGraphTracesIgnoreScale) {
  WorkloadConfig Small;
  Small.Scale = 0.01;
  WorkloadConfig Full;
  Full.Scale = 1.0;
  EXPECT_DOUBLE_EQ(makeBlackScholesWorkload(Small).totalIterations(),
                   makeBlackScholesWorkload(Full).totalIterations());
  EXPECT_DOUBLE_EQ(makeNBodyWorkload(Small).totalIterations(),
                   makeNBodyWorkload(Full).totalIterations());
}

TEST(TraceInvariants, TabletInputsShrinkWhereTable1Says) {
  WorkloadConfig Desktop;
  WorkloadConfig Tablet;
  Tablet.TabletInputs = true;
  // MM: 2048^2 -> 1024^2; SL: 500M -> 45M; SM: unchanged.
  EXPECT_LT(makeMatrixMultiplyWorkload(Tablet).totalIterations(),
            makeMatrixMultiplyWorkload(Desktop).totalIterations());
  EXPECT_LT(makeSkipListWorkload(Tablet).totalIterations(),
            makeSkipListWorkload(Desktop).totalIterations());
  EXPECT_DOUBLE_EQ(makeSeismicWorkload(Tablet).totalIterations(),
                   makeSeismicWorkload(Desktop).totalIterations());
}
