//===-- tests/RuntimeTest.cpp - runtime/ unit & stress tests ---------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/runtime/ChaseLevDeque.h"
#include "ecas/runtime/ParallelFor.h"
#include "ecas/runtime/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

using namespace ecas;

TEST(ChaseLevDeque, LifoForOwner) {
  ChaseLevDeque<uint64_t> Deque;
  for (uint64_t I = 0; I != 10; ++I)
    Deque.push(I);
  for (uint64_t I = 10; I != 0; --I) {
    auto V = Deque.pop();
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, I - 1);
  }
  EXPECT_FALSE(Deque.pop().has_value());
}

TEST(ChaseLevDeque, FifoForThief) {
  ChaseLevDeque<uint64_t> Deque;
  for (uint64_t I = 0; I != 10; ++I)
    Deque.push(I);
  for (uint64_t I = 0; I != 10; ++I) {
    auto V = Deque.steal();
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, I);
  }
  EXPECT_FALSE(Deque.steal().has_value());
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity) {
  ChaseLevDeque<uint64_t> Deque(8);
  const uint64_t N = 10000;
  for (uint64_t I = 0; I != N; ++I)
    Deque.push(I);
  EXPECT_EQ(Deque.sizeEstimate(), static_cast<int64_t>(N));
  uint64_t Sum = 0;
  while (auto V = Deque.pop())
    Sum += *V;
  EXPECT_EQ(Sum, N * (N - 1) / 2);
}

TEST(ChaseLevDeque, ConcurrentStealersSeeEachItemOnce) {
  ChaseLevDeque<uint64_t> Deque;
  const uint64_t N = 200000;
  std::atomic<uint64_t> StolenSum{0};
  std::atomic<uint64_t> StolenCount{0};
  std::atomic<bool> Done{false};

  std::vector<std::thread> Thieves;
  for (int T = 0; T != 3; ++T)
    Thieves.emplace_back([&] {
      while (!Done.load(std::memory_order_acquire) ||
             Deque.sizeEstimate() > 0) {
        if (auto V = Deque.steal()) {
          StolenSum.fetch_add(*V, std::memory_order_relaxed);
          StolenCount.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });

  uint64_t OwnerSum = 0, OwnerCount = 0;
  for (uint64_t I = 1; I <= N; ++I) {
    Deque.push(I);
    if (I % 3 == 0) {
      if (auto V = Deque.pop()) {
        OwnerSum += *V;
        ++OwnerCount;
      }
    }
  }
  while (auto V = Deque.pop()) {
    OwnerSum += *V;
    ++OwnerCount;
  }
  Done.store(true, std::memory_order_release);
  for (auto &T : Thieves)
    T.join();
  // Drain any stragglers the owner missed after Done flipped.
  while (auto V = Deque.steal()) {
    OwnerSum += *V;
    ++OwnerCount;
  }

  EXPECT_EQ(OwnerCount + StolenCount.load(), N);
  EXPECT_EQ(OwnerSum + StolenSum.load(), N * (N + 1) / 2);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool Pool(4);
  const uint64_t N = 100000;
  std::vector<std::atomic<uint32_t>> Hits(N);
  Pool.parallelFor(0, N, 64, [&](uint64_t Begin, uint64_t End) {
    for (uint64_t I = Begin; I != End; ++I)
      Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (uint64_t I = 0; I != N; ++I)
    ASSERT_EQ(Hits[I].load(), 1u) << "index " << I;
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  ThreadPool Pool(4);
  std::atomic<uint64_t> Count{0};
  Pool.parallelFor(10, 10, 16, [&](uint64_t B, uint64_t E) {
    Count.fetch_add(E - B);
  });
  EXPECT_EQ(Count.load(), 0u);
  Pool.parallelFor(0, 1, 16, [&](uint64_t B, uint64_t E) {
    Count.fetch_add(E - B);
  });
  EXPECT_EQ(Count.load(), 1u);
}

TEST(ThreadPool, BackToBackJobs) {
  ThreadPool Pool(4);
  for (int Job = 0; Job != 50; ++Job) {
    std::atomic<uint64_t> Sum{0};
    const uint64_t N = 5000;
    Pool.parallelFor(0, N, 32, [&](uint64_t Begin, uint64_t End) {
      uint64_t Local = 0;
      for (uint64_t I = Begin; I != End; ++I)
        Local += I;
      Sum.fetch_add(Local, std::memory_order_relaxed);
    });
    ASSERT_EQ(Sum.load(), N * (N - 1) / 2) << "job " << Job;
  }
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool Pool(1);
  std::atomic<uint64_t> Count{0};
  Pool.parallelFor(0, 10000, 16, [&](uint64_t B, uint64_t E) {
    Count.fetch_add(E - B, std::memory_order_relaxed);
  });
  EXPECT_EQ(Count.load(), 10000u);
}

TEST(ThreadPool, ImbalancedBodiesTriggerStealing) {
  ThreadPool Pool(4);
  std::atomic<uint64_t> Work{0};
  // Front-loaded cost: early indices are 100x heavier.
  Pool.parallelFor(0, 4000, 8, [&](uint64_t Begin, uint64_t End) {
    for (uint64_t I = Begin; I != End; ++I) {
      unsigned Reps = I < 400 ? 2000 : 20;
      volatile uint64_t Sink = 0;
      for (unsigned R = 0; R != Reps; ++R)
        Sink = Sink + I;
      Work.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(Work.load(), 4000u);
}

TEST(WorkPool, GrabsAreDisjointAndExhaustive) {
  WorkPool Pool(1000);
  uint64_t Seen = 0;
  while (true) {
    IterRange Range = Pool.grab(64);
    if (Range.size() == 0)
      break;
    Seen += Range.size();
  }
  EXPECT_EQ(Seen, 1000u);
  EXPECT_EQ(Pool.remaining(), 0u);
}

TEST(WorkPool, ConcurrentGrabsPartitionTheRange) {
  WorkPool Pool(1000000);
  std::atomic<uint64_t> Total{0};
  std::vector<std::thread> Workers;
  for (int T = 0; T != 8; ++T)
    Workers.emplace_back([&] {
      while (true) {
        IterRange Range = Pool.grab(97);
        if (Range.size() == 0)
          return;
        Total.fetch_add(Range.size(), std::memory_order_relaxed);
      }
    });
  for (auto &W : Workers)
    W.join();
  EXPECT_EQ(Total.load(), 1000000u);
}

TEST(HybridParallelFor, SplitsByAlpha) {
  ThreadPool Pool(4);
  std::atomic<uint64_t> CpuIters{0}, GpuIters{0};
  HybridResult Result = hybridParallelFor(
      Pool, 10000, 0.3,
      [&](uint64_t B, uint64_t E) { CpuIters.fetch_add(E - B); },
      [&](uint64_t B, uint64_t E) { GpuIters.fetch_add(E - B); });
  EXPECT_EQ(CpuIters.load() + GpuIters.load(), 10000u);
  EXPECT_EQ(GpuIters.load(), 3000u);
  EXPECT_EQ(Result.CpuIterations, 7000u);
  EXPECT_EQ(Result.GpuIterations, 3000u);
}

TEST(HybridParallelFor, AlphaExtremes) {
  ThreadPool Pool(2);
  std::atomic<uint64_t> CpuIters{0}, GpuIters{0};
  auto CpuBody = [&](uint64_t B, uint64_t E) { CpuIters.fetch_add(E - B); };
  auto GpuBody = [&](uint64_t B, uint64_t E) { GpuIters.fetch_add(E - B); };
  hybridParallelFor(Pool, 1000, 0.0, CpuBody, GpuBody);
  EXPECT_EQ(CpuIters.load(), 1000u);
  EXPECT_EQ(GpuIters.load(), 0u);
  hybridParallelFor(Pool, 1000, 1.0, CpuBody, GpuBody);
  EXPECT_EQ(GpuIters.load(), 1000u);
}

TEST(ProfileChunkOnHost, CpuWorkersStopWhenGpuFinishes) {
  WorkPool Pool(1u << 20);
  std::atomic<uint64_t> CpuDone{0};
  HybridResult Result = profileChunkOnHost(
      Pool, /*GpuChunk=*/2048, /*Threads=*/3,
      [&](uint64_t B, uint64_t E) {
        CpuDone.fetch_add(E - B, std::memory_order_relaxed);
      },
      [](uint64_t B, uint64_t E) {
        // "GPU" takes a while, so the CPU reliably grabs some work even
        // on a loaded machine.
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
      },
      /*CpuGrab=*/64);
  EXPECT_EQ(Result.GpuIterations, 2048u);
  EXPECT_EQ(Result.CpuIterations, CpuDone.load());
  EXPECT_GT(Result.CpuIterations, 0u);
  // The pool retains whatever neither side consumed.
  EXPECT_EQ(Pool.remaining(),
            (1u << 20) - Result.GpuIterations - Result.CpuIterations);
}
