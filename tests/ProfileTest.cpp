//===-- tests/ProfileTest.cpp - profile/ unit tests ------------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/hw/Presets.h"
#include "ecas/power/MicroBenchmarks.h"
#include "ecas/profile/OnlineProfiler.h"
#include "ecas/profile/WorkloadClass.h"

#include <gtest/gtest.h>

using namespace ecas;

TEST(WorkloadClass, IndexRoundTrip) {
  for (unsigned I = 0; I != WorkloadClass::NumClasses; ++I) {
    WorkloadClass Class = WorkloadClass::fromIndex(I);
    EXPECT_EQ(Class.index(), I);
  }
}

TEST(WorkloadClass, Names) {
  WorkloadClass Class;
  Class.Bound = Boundedness::Memory;
  Class.CpuDuration = DurationClass::Short;
  Class.GpuDuration = DurationClass::Long;
  EXPECT_EQ(Class.name(), "memory/cpu-short/gpu-long");
  EXPECT_EQ(Class.shortName(), "M S L");
}

TEST(WorkloadClass, ClassifierThresholds) {
  ClassifierThresholds Thresholds; // 0.33 and 100 ms.
  WorkloadClass C = classifyWorkload(0.5, 0.05, 0.5, Thresholds);
  EXPECT_EQ(C.Bound, Boundedness::Memory);
  EXPECT_EQ(C.CpuDuration, DurationClass::Short);
  EXPECT_EQ(C.GpuDuration, DurationClass::Long);

  C = classifyWorkload(0.2, 0.5, 0.05, Thresholds);
  EXPECT_EQ(C.Bound, Boundedness::Compute);
  EXPECT_EQ(C.CpuDuration, DurationClass::Long);
  EXPECT_EQ(C.GpuDuration, DurationClass::Short);

  // Boundary: exactly at the threshold stays compute-bound / long.
  C = classifyWorkload(0.33, 0.1, 0.1, Thresholds);
  EXPECT_EQ(C.Bound, Boundedness::Compute);
  EXPECT_EQ(C.CpuDuration, DurationClass::Long);
}

TEST(SampleWeightedAlpha, WeightedAverage) {
  SampleWeightedAlpha Acc;
  EXPECT_FALSE(Acc.hasValue());
  Acc.addSample(0.2, 100.0);
  Acc.addSample(0.8, 300.0);
  ASSERT_TRUE(Acc.hasValue());
  EXPECT_NEAR(Acc.value(), 0.65, 1e-12);
}

TEST(SampleWeightedAlpha, ZeroWeightIgnoredInAverage) {
  SampleWeightedAlpha Acc;
  Acc.addSample(0.4, 10.0);
  Acc.addSample(1.0, 0.0);
  EXPECT_NEAR(Acc.value(), 0.4, 1e-12);
}

TEST(ProfileSample, AccumulateBlendsByTime) {
  ProfileSample A;
  A.CpuIterations = 100;
  A.GpuIterations = 200;
  A.ElapsedSeconds = 1.0;
  A.CpuBusySeconds = 1.0;
  A.GpuBusySeconds = 0.5;
  A.CpuThroughput = 100;
  A.GpuThroughput = 400;
  A.MissPerLoadStore = 0.2;

  ProfileSample B;
  B.CpuIterations = 300;
  B.GpuIterations = 100;
  B.ElapsedSeconds = 1.0;
  B.CpuBusySeconds = 1.0;
  B.GpuBusySeconds = 0.5;
  B.MissPerLoadStore = 0.4;

  A.accumulate(B);
  EXPECT_DOUBLE_EQ(A.CpuIterations, 400.0);
  EXPECT_DOUBLE_EQ(A.GpuIterations, 300.0);
  EXPECT_DOUBLE_EQ(A.ElapsedSeconds, 2.0);
  // Throughputs come from per-device busy time, not wall time.
  EXPECT_DOUBLE_EQ(A.CpuThroughput, 200.0);
  EXPECT_DOUBLE_EQ(A.GpuThroughput, 300.0);
  EXPECT_NEAR(A.MissPerLoadStore, 0.3, 1e-12);
}

TEST(OnlineProfiler, MeasuresBothDevices) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  OnlineProfiler Profiler(Proc, Spec.defaultGpuProfileSize());
  KernelDesc Kernel = computeBoundMicroKernel();
  double Remaining = 1e7;
  ProfileSample Sample = Profiler.profileOnce(Kernel, Remaining);
  EXPECT_GT(Sample.GpuIterations, 0.0);
  EXPECT_GT(Sample.CpuIterations, 0.0);
  EXPECT_GT(Sample.CpuThroughput, 0.0);
  EXPECT_GT(Sample.GpuThroughput, 0.0);
  EXPECT_LT(Remaining, 1e7);
  EXPECT_NEAR(Remaining,
              1e7 - Sample.CpuIterations - Sample.GpuIterations, 1e-6);
  // The compute micro has near-zero miss ratio.
  EXPECT_LT(Sample.MissPerLoadStore, 0.1);
}

TEST(OnlineProfiler, MemoryKernelShowsHighMissRatio) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  OnlineProfiler Profiler(Proc, Spec.defaultGpuProfileSize());
  KernelDesc Kernel = memoryBoundMicroKernel();
  double Remaining = 1e7;
  ProfileSample Sample = Profiler.profileOnce(Kernel, Remaining);
  EXPECT_GT(Sample.MissPerLoadStore, 0.33);
}

TEST(OnlineProfiler, ClassificationUsesRemainingWork) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  OnlineProfiler Profiler(Proc, Spec.defaultGpuProfileSize());
  ProfileSample Sample;
  Sample.CpuThroughput = 1e6;
  Sample.GpuThroughput = 2e6;
  Sample.MissPerLoadStore = 0.5;
  // 1e4 remaining at 1e6/s = 10 ms: short on both devices.
  WorkloadClass Short = Profiler.classify(Sample, 1e4);
  EXPECT_EQ(Short.CpuDuration, DurationClass::Short);
  EXPECT_EQ(Short.GpuDuration, DurationClass::Short);
  EXPECT_EQ(Short.Bound, Boundedness::Memory);
  // 1e6 remaining: 1 s CPU, 0.5 s GPU — long on both.
  WorkloadClass Long = Profiler.classify(Sample, 1e6);
  EXPECT_EQ(Long.CpuDuration, DurationClass::Long);
  EXPECT_EQ(Long.GpuDuration, DurationClass::Long);
}

TEST(OnlineProfiler, ExhaustedPoolYieldsEmptySample) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  OnlineProfiler Profiler(Proc, 2048);
  KernelDesc Kernel = computeBoundMicroKernel();
  double Remaining = 0.0;
  ProfileSample Sample = Profiler.profileOnce(Kernel, Remaining);
  EXPECT_DOUBLE_EQ(Sample.ElapsedSeconds, 0.0);
  EXPECT_DOUBLE_EQ(Remaining, 0.0);
}

TEST(OnlineProfiler, RepeatedProfilingConsumesPool) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  OnlineProfiler Profiler(Proc, Spec.defaultGpuProfileSize());
  KernelDesc Kernel = computeBoundMicroKernel();
  const double Total = 1e6;
  double Remaining = Total;
  unsigned Repetitions = 0;
  while (Remaining > Total / 2) {
    Profiler.profileOnce(Kernel, Remaining);
    ++Repetitions;
    ASSERT_LT(Repetitions, 10000u) << "profiling failed to make progress";
  }
  EXPECT_GT(Repetitions, 1u);
  EXPECT_LE(Remaining, Total / 2);
}
