//===-- tests/MiniClTest.cpp - cl/ unit tests -------------------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/cl/MiniCl.h"
#include "ecas/support/ThreadAnnotations.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using namespace ecas;
using namespace ecas::cl;

TEST(MiniKernel, IdentityFromName) {
  MiniKernel A("saxpy", [](uint64_t, uint64_t) {});
  MiniKernel B("saxpy", [](uint64_t, uint64_t) {});
  MiniKernel C("gemm", [](uint64_t, uint64_t) {});
  EXPECT_TRUE(A.valid());
  EXPECT_EQ(A.id(), B.id());
  EXPECT_NE(A.id(), C.id());
  EXPECT_FALSE(MiniKernel().valid());
}

TEST(CommandQueue, ExecutesAndCompletes) {
  CommandQueue Queue(
      "test", [](const RangeBody &Body, uint64_t B, uint64_t E) {
        Body(B, E);
      });
  std::atomic<uint64_t> Sum{0};
  MiniKernel Kernel("sum", [&Sum](uint64_t Begin, uint64_t End) {
    for (uint64_t I = Begin; I != End; ++I)
      Sum.fetch_add(I, std::memory_order_relaxed);
  });
  MiniEvent Event = Queue.enqueue(Kernel, 0, 100);
  Event.wait();
  EXPECT_EQ(Event.state(), CommandState::Complete);
  EXPECT_EQ(Event.status(), cl::Status::Success);
  EXPECT_EQ(Sum.load(), 4950u);
  EXPECT_EQ(Queue.commandsCompleted(), 1u);
}

TEST(CommandQueue, InOrderExecution) {
  CommandQueue Queue(
      "test", [](const RangeBody &Body, uint64_t B, uint64_t E) {
        Body(B, E);
      });
  std::vector<int> Order;
  AnnotatedMutex OrderMutex{"Test.Order"};
  for (int I = 0; I != 10; ++I) {
    MiniKernel Kernel("step", [&, I](uint64_t, uint64_t) {
      LockGuard Lock(OrderMutex);
      Order.push_back(I);
    });
    Queue.enqueue(Kernel, 0, 1);
  }
  Queue.finish();
  ASSERT_EQ(Order.size(), 10u);
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(CommandQueue, ErrorEventsCompleteImmediately) {
  CommandQueue Queue(
      "test", [](const RangeBody &Body, uint64_t B, uint64_t E) {
        Body(B, E);
      });
  MiniEvent BadKernel = Queue.enqueue(MiniKernel(), 0, 10);
  EXPECT_EQ(BadKernel.state(), CommandState::Complete);
  EXPECT_EQ(BadKernel.status(), cl::Status::InvalidKernel);

  MiniKernel Kernel("noop", [](uint64_t, uint64_t) {});
  MiniEvent BadRange = Queue.enqueue(Kernel, 10, 10);
  EXPECT_EQ(BadRange.status(), cl::Status::InvalidRange);
}

TEST(CommandQueue, ProfilingTimestampsAreOrdered) {
  CommandQueue Queue(
      "test",
      [](const RangeBody &Body, uint64_t B, uint64_t E) { Body(B, E); },
      /*DispatchLatencySec=*/1e-3);
  MiniKernel Kernel("spin", [](uint64_t Begin, uint64_t End) {
    volatile uint64_t Sink = 0;
    for (uint64_t I = Begin; I != End; ++I)
      for (int R = 0; R != 1000; ++R)
        Sink = Sink + I;
  });
  MiniEvent Event = Queue.enqueue(Kernel, 0, 1000);
  Event.wait();
  EXPECT_LE(Event.queuedSeconds(), Event.submitSeconds());
  EXPECT_LE(Event.submitSeconds(), Event.startSeconds());
  EXPECT_LE(Event.startSeconds(), Event.endSeconds());
  EXPECT_GT(Event.executionSeconds(), 0.0);
  // Dispatch latency shows up as overhead, not execution time.
  EXPECT_GE(Event.overheadSeconds(), 1e-3);
}

TEST(CommandQueue, FinishWaitsForEverything) {
  CommandQueue Queue(
      "test", [](const RangeBody &Body, uint64_t B, uint64_t E) {
        Body(B, E);
      });
  std::atomic<unsigned> Done{0};
  MiniKernel Kernel("tick", [&Done](uint64_t, uint64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    Done.fetch_add(1);
  });
  for (int I = 0; I != 8; ++I)
    Queue.enqueue(Kernel, 0, 1);
  Queue.finish();
  EXPECT_EQ(Done.load(), 8u);
  EXPECT_EQ(Queue.commandsCompleted(), 8u);
}

TEST(MiniContext, PartitionedCoversRangeExactlyOnce) {
  MiniContext Ctx(4);
  const uint64_t N = 50000;
  std::vector<std::atomic<uint32_t>> Hits(N);
  MiniKernel Kernel("cover", [&Hits](uint64_t Begin, uint64_t End) {
    for (uint64_t I = Begin; I != End; ++I)
      Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  auto [CpuEvent, GpuEvent] = Ctx.runPartitioned(Kernel, N, 0.3);
  EXPECT_EQ(CpuEvent.status(), cl::Status::Success);
  EXPECT_EQ(GpuEvent.status(), cl::Status::Success);
  for (uint64_t I = 0; I != N; ++I)
    ASSERT_EQ(Hits[I].load(), 1u) << "index " << I;
}

TEST(MiniContext, AlphaExtremesSkipTheIdleDevice) {
  MiniContext Ctx(2);
  std::atomic<uint64_t> Count{0};
  MiniKernel Kernel("count", [&Count](uint64_t Begin, uint64_t End) {
    Count.fetch_add(End - Begin, std::memory_order_relaxed);
  });
  auto [CpuOnly, GpuIdle] = Ctx.runPartitioned(Kernel, 1000, 0.0);
  EXPECT_EQ(Count.load(), 1000u);
  EXPECT_EQ(GpuIdle.status(), cl::Status::InvalidRange); // Empty GPU share.
  Count = 0;
  auto [CpuIdle, GpuOnly] = Ctx.runPartitioned(Kernel, 1000, 1.0);
  EXPECT_EQ(Count.load(), 1000u);
  EXPECT_EQ(CpuIdle.status(), cl::Status::InvalidRange);
  EXPECT_EQ(GpuOnly.status(), cl::Status::Success);
}

TEST(MiniContext, CustomGpuHookReceivesTheTail) {
  std::atomic<uint64_t> HookBegin{0}, HookEnd{0};
  MiniContext Ctx(2, [&](uint64_t Begin, uint64_t End) {
    HookBegin = Begin;
    HookEnd = End;
  });
  MiniKernel Kernel("noop", [](uint64_t, uint64_t) {});
  Ctx.runPartitioned(Kernel, 1000, 0.25);
  EXPECT_EQ(HookBegin.load(), 750u);
  EXPECT_EQ(HookEnd.load(), 1000u);
}

TEST(MiniContext, EventTimingsSupportThroughputEstimation) {
  // The profiling pattern of Section 3.1 on the host layer: enqueue a
  // chunk per device, derive R from iterations / execution time.
  MiniContext Ctx(4);
  MiniKernel Kernel("work", [](uint64_t Begin, uint64_t End) {
    volatile double Sink = 0;
    for (uint64_t I = Begin; I != End; ++I)
      Sink = Sink + 1.0 / (1.0 + static_cast<double>(I));
  });
  MiniEvent Cpu = Ctx.cpuQueue().enqueue(Kernel, 0, 200000);
  MiniEvent Gpu = Ctx.gpuQueue().enqueue(Kernel, 200000, 260000);
  Cpu.wait();
  Gpu.wait();
  ASSERT_GT(Cpu.executionSeconds(), 0.0);
  ASSERT_GT(Gpu.executionSeconds(), 0.0);
  double CpuRate = 200000 / Cpu.executionSeconds();
  double GpuRate = 60000 / Gpu.executionSeconds();
  EXPECT_GT(CpuRate, 0.0);
  EXPECT_GT(GpuRate, 0.0);
}

TEST(StatusNames, AllCovered) {
  EXPECT_STREQ(statusName(cl::Status::Success), "success");
  EXPECT_STREQ(statusName(cl::Status::InvalidKernel), "invalid kernel");
  EXPECT_STREQ(statusName(cl::Status::InvalidRange), "invalid range");
  EXPECT_STREQ(statusName(cl::Status::DeviceUnavailable),
               "device unavailable");
}

TEST(CommandQueue, FaultHookFailsCommandsWithoutRunningThem) {
  CommandQueue Queue("sim-gpu",
                     [](const RangeBody &Body, uint64_t Begin, uint64_t End) {
                       Body(Begin, End);
                     });
  std::atomic<uint64_t> Ran{0};
  MiniKernel Kernel("count", [&](uint64_t Begin, uint64_t End) {
    Ran += End - Begin;
  });

  Queue.setFaultHook([] { return cl::Status::DeviceUnavailable; });
  MiniEvent Failed = Queue.enqueue(Kernel, 0, 10);
  EXPECT_EQ(Failed.waitStatus(), cl::Status::DeviceUnavailable);
  EXPECT_EQ(Ran.load(), 0u); // The body never ran.
  EXPECT_EQ(Queue.commandsFailed(), 1u);
  EXPECT_EQ(Queue.commandsCompleted(), 0u);

  // Clearing the hook restores normal service on the same queue.
  Queue.setFaultHook({});
  EXPECT_EQ(Queue.enqueue(Kernel, 0, 10).waitStatus(), cl::Status::Success);
  EXPECT_EQ(Ran.load(), 10u);
  EXPECT_EQ(Queue.commandsCompleted(), 1u);
}

TEST(MiniContext, GpuRefusalFallsBackToCpuExactlyOnce) {
  MiniContext Ctx(2);
  Ctx.gpuQueue().setFaultHook([] { return cl::Status::DeviceUnavailable; });
  std::atomic<uint64_t> Covered{0};
  MiniKernel Kernel("cover", [&](uint64_t Begin, uint64_t End) {
    Covered += End - Begin;
  });
  auto [CpuEvent, GpuEvent] = Ctx.runPartitioned(Kernel, 1000, 0.5);
  // The refused GPU share was rerun on the CPU: the range is covered
  // exactly once and the returned GPU-side event is the fallback's.
  EXPECT_EQ(CpuEvent.status(), cl::Status::Success);
  EXPECT_EQ(GpuEvent.status(), cl::Status::Success);
  EXPECT_EQ(Covered.load(), 1000u);
  EXPECT_EQ(Ctx.gpuFallbacks(), 1u);
  EXPECT_EQ(Ctx.gpuQueue().commandsFailed(), 1u);
}
