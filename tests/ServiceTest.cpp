//===-- tests/ServiceTest.cpp - multi-tenant service front end ------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The overload-resilient service layer: bounded rings, the SLA-class
/// weighted-round-robin queue, admission control (backpressure, deadline
/// feasibility, quarantine inflation), per-tenant table-G namespacing,
/// deadline-aware shedding, serve exit-code mapping — and the chaos-soak
/// harness that drives thousands of mixed-SLA requests through a faulty
/// platform and asserts the accounting conservation law, SLA fairness,
/// and graceful shutdown. Sized to stay tractable under TSan.
///
//===----------------------------------------------------------------------===//

#include "ecas/service/Service.h"

#include "ecas/core/EasScheduler.h"
#include "ecas/fault/FaultPlan.h"
#include "ecas/hw/Presets.h"
#include "ecas/obs/MetricNames.h"
#include "ecas/power/Characterizer.h"
#include "ecas/service/Admission.h"
#include "ecas/service/Bounded.h"
#include "ecas/service/SlaQueue.h"
#include "ecas/sim/SimProcessor.h"
#include "ecas/support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace ecas;

namespace {

const PowerCurveSet &desktopCurves() {
  static PowerCurveSet Curves = Characterizer(haswellDesktop()).characterize();
  return Curves;
}

PlatformSpec faultySpec(const std::string &Scenario) {
  PlatformSpec Spec = haswellDesktop();
  ErrorOr<FaultPlan> Plan = FaultPlan::scenario(Scenario);
  EXPECT_TRUE(Plan.ok()) << Scenario;
  Spec.Faults = *Plan;
  return Spec;
}

KernelDesc namedKernel(const std::string &Name) {
  KernelDesc Kernel;
  Kernel.Name = Name;
  return Kernel.withAutoId();
}

QueuedRequest requestFor(SlaClass Sla, uint64_t Sequence = 0) {
  QueuedRequest Request;
  Request.Kernel = namedKernel("q");
  Request.Iterations = 1.0;
  Request.Ctx.TenantId = 1;
  Request.Ctx.Sla = Sla;
  Request.Sequence = Sequence;
  return Request;
}

} // namespace

//===----------------------------------------------------------------------===//
// BoundedRing
//===----------------------------------------------------------------------===//

TEST(BoundedRing, FifoOrderWithinFixedCapacity) {
  BoundedRing<int> Ring(3);
  EXPECT_TRUE(Ring.empty());
  EXPECT_TRUE(Ring.tryPush(1));
  EXPECT_TRUE(Ring.tryPush(2));
  EXPECT_TRUE(Ring.tryPush(3));
  EXPECT_TRUE(Ring.full());
  EXPECT_FALSE(Ring.tryPush(4));

  EXPECT_EQ(Ring.pop(), 1);
  EXPECT_TRUE(Ring.tryPush(4)); // wraps over the freed slot
  EXPECT_EQ(Ring.pop(), 2);
  EXPECT_EQ(Ring.pop(), 3);
  EXPECT_EQ(Ring.pop(), 4);
  EXPECT_TRUE(Ring.empty());
}

TEST(BoundedRing, ZeroCapacityIsPermanentlyFull) {
  BoundedRing<int> Ring(0);
  EXPECT_TRUE(Ring.empty());
  EXPECT_TRUE(Ring.full());
  EXPECT_FALSE(Ring.tryPush(1));
  EXPECT_FALSE(Ring.tryPush(2));
}

//===----------------------------------------------------------------------===//
// SlaQueue: weighted cross-class dequeue
//===----------------------------------------------------------------------===//

TEST(SlaQueue, WeightedRoundRobinServesStrictestFirstWithoutStarvation) {
  SlaQueue Queue(12); // default weights {6, 3, 1}
  for (unsigned I = 0; I != 12; ++I) {
    ASSERT_TRUE(Queue.tryPush(requestFor(SlaClass::Sla0)));
    ASSERT_TRUE(Queue.tryPush(requestFor(SlaClass::Sla1)));
    ASSERT_TRUE(Queue.tryPush(requestFor(SlaClass::Sla2)));
  }

  std::vector<unsigned> Order;
  while (std::optional<QueuedRequest> Request = Queue.tryPop())
    Order.push_back(slaIndex(Request->Ctx.Sla));
  ASSERT_EQ(Order.size(), 36u);

  // While every lane is nonempty, each refill cycle serves SLA0 first
  // and exactly per the weights: 6x SLA0, then 3x SLA1, then 1x SLA2.
  const std::vector<unsigned> Cycle = {0, 0, 0, 0, 0, 0, 1, 1, 1, 2};
  for (unsigned I = 0; I != 20; ++I)
    EXPECT_EQ(Order[I], Cycle[I % 10]) << "position " << I;

  // Nothing is lost and nothing is starved: all 12 of each class drain.
  unsigned Counts[NumSlaClasses] = {};
  for (unsigned Sla : Order)
    ++Counts[Sla];
  for (unsigned I = 0; I != NumSlaClasses; ++I)
    EXPECT_EQ(Counts[I], 12u) << slaClassName(slaFromIndex(I));

  // SLA2 is served within every full cycle — SLA0 cannot starve it.
  EXPECT_EQ(Order[9], 2u);
  EXPECT_EQ(Order[19], 2u);
}

TEST(SlaQueue, FullLaneAndClosedQueueRejectPushes) {
  SlaQueue Queue(1);
  EXPECT_TRUE(Queue.tryPush(requestFor(SlaClass::Sla1)));
  EXPECT_FALSE(Queue.tryPush(requestFor(SlaClass::Sla1))) << "lane full";
  EXPECT_TRUE(Queue.tryPush(requestFor(SlaClass::Sla2)))
      << "lanes are independent";
  Queue.close();
  EXPECT_TRUE(Queue.closed());
  EXPECT_FALSE(Queue.tryPush(requestFor(SlaClass::Sla0))) << "closed";
  // Already-queued requests stay poppable until drained.
  EXPECT_TRUE(Queue.pop().has_value());
  EXPECT_TRUE(Queue.pop().has_value());
  EXPECT_FALSE(Queue.pop().has_value()) << "closed and drained";
}

TEST(SlaQueue, CloseWakesBlockedPopper) {
  SlaQueue Queue(4);
  std::atomic<bool> PopReturned{false};
  std::thread Popper([&] {
    EXPECT_FALSE(Queue.pop().has_value());
    PopReturned.store(true);
  });
  // The popper blocks on the empty queue until close() wakes it.
  Queue.close();
  Popper.join();
  EXPECT_TRUE(PopReturned.load());
}

//===----------------------------------------------------------------------===//
// Admission control
//===----------------------------------------------------------------------===//

TEST(Admission, ExpiredDeadlineAtSubmitIsInfeasibleWithNoRetry) {
  AdmissionController Ctl(AdmissionPolicy{});
  RequestContext Ctx;
  Ctx.Sla = SlaClass::Sla0;
  Ctx.DeadlineSec = 0.0;
  AdmissionController::Decision D = Ctl.admit(Ctx, 0, 64);
  EXPECT_FALSE(D.admitted());
  EXPECT_EQ(D.Verdict.code(), ErrCode::DeadlineInfeasible);
  EXPECT_EQ(D.RetryAfterSec, 0.0) << "no backoff revives a dead deadline";
}

TEST(Admission, FullLaneIsOverloadedWithBoundedRetryHint) {
  AdmissionPolicy Policy;
  AdmissionController Ctl(Policy);
  RequestContext Ctx; // no deadline
  AdmissionController::Decision D = Ctl.admit(Ctx, 64, 64);
  EXPECT_FALSE(D.admitted());
  EXPECT_EQ(D.Verdict.code(), ErrCode::Overloaded);
  EXPECT_GE(D.RetryAfterSec, Policy.MinRetryAfterSec);
  EXPECT_LE(D.RetryAfterSec, Policy.MaxRetryAfterSec);
}

TEST(Admission, DoomedDeadlineBehindBacklogIsRejected) {
  AdmissionPolicy Policy;
  Policy.Workers = 1;
  Policy.DefaultServiceSec = 0.05;
  AdmissionController Ctl(Policy);
  RequestContext Ctx;
  Ctx.DeadlineSec = 0.1; // 10 queued x 50 ms each cannot fit 100 ms
  AdmissionController::Decision D = Ctl.admit(Ctx, 10, 64);
  EXPECT_FALSE(D.admitted());
  EXPECT_EQ(D.Verdict.code(), ErrCode::DeadlineInfeasible);
  EXPECT_GT(D.RetryAfterSec, 0.0) << "capacity problem: retry is sensible";

  // The same budget sails through an empty lane.
  EXPECT_TRUE(Ctl.admit(Ctx, 0, 64).admitted());
}

TEST(Admission, QuarantineInflatesTheServiceEstimate) {
  GpuHealthMonitor Health;
  AdmissionPolicy Policy;
  Policy.DefaultServiceSec = 0.05;
  Policy.QuarantineInflation = 4.0;
  AdmissionController Ctl(Policy, &Health);

  RequestContext Ctx;
  Ctx.DeadlineSec = 0.1; // fits 50 ms, not 200 ms
  EXPECT_TRUE(Ctl.admit(Ctx, 0, 64).admitted());

  Health.noteHang(0.0);
  ASSERT_EQ(Health.state(), GpuHealthState::Quarantined);
  AdmissionController::Decision D = Ctl.admit(Ctx, 0, 64);
  EXPECT_FALSE(D.admitted());
  EXPECT_EQ(D.Verdict.code(), ErrCode::DeadlineInfeasible);
}

TEST(Admission, EwmaFirstSampleReplacesPriorThenSmooths) {
  AdmissionPolicy Policy;
  Policy.DefaultServiceSec = 0.05;
  Policy.ServiceEwmaAlpha = 0.2;
  AdmissionController Ctl(Policy);
  EXPECT_DOUBLE_EQ(Ctl.estimatedServiceSec(), 0.05);
  Ctl.noteServiceTime(1.0);
  EXPECT_DOUBLE_EQ(Ctl.estimatedServiceSec(), 1.0)
      << "first measurement replaces the prior outright";
  Ctl.noteServiceTime(0.5);
  EXPECT_DOUBLE_EQ(Ctl.estimatedServiceSec(), 1.0 + 0.2 * (0.5 - 1.0));
  Ctl.noteServiceTime(-1.0); // ignored
  EXPECT_DOUBLE_EQ(Ctl.estimatedServiceSec(), 0.9);
}

//===----------------------------------------------------------------------===//
// Per-tenant table-G namespacing
//===----------------------------------------------------------------------===//

TEST(TenantNamespace, AnonymousTenantKeepsRawKernelKey) {
  EXPECT_EQ(namespacedKernelKey(0, 42u), 42u);
  EXPECT_EQ(namespacedKernelKey(0, 0xdeadbeefULL), 0xdeadbeefULL);
}

TEST(TenantNamespace, KeysAreUniqueAcrossTenantsAndNeverZero) {
  std::set<uint64_t> Keys;
  for (uint64_t Tenant = 1; Tenant <= 50; ++Tenant)
    for (uint64_t Kernel = 1; Kernel <= 20; ++Kernel) {
      uint64_t Key = namespacedKernelKey(Tenant, Kernel);
      EXPECT_NE(Key, 0u);
      EXPECT_TRUE(Keys.insert(Key).second)
          << "collision at tenant " << Tenant << " kernel " << Kernel;
    }

  // Adversarial kernel id equal to the tenant's mix word would cancel
  // to zero; the fallback must still produce a nonzero key.
  for (uint64_t Tenant = 1; Tenant <= 10; ++Tenant) {
    SplitMix64 Mixer(Tenant);
    EXPECT_NE(namespacedKernelKey(Tenant, Mixer.next()), 0u);
  }
}

TEST(TenantNamespace, TenantsLearnSeparateTableGRecords) {
  EasScheduler Scheduler(desktopCurves(), Metric::edp(), {});
  SimProcessor Proc(haswellDesktop());
  KernelDesc Kernel = namedKernel("shared-kernel");

  RequestContext TenantA;
  TenantA.TenantId = 1;
  RequestContext TenantB;
  TenantB.TenantId = 2;
  Scheduler.execute(Proc, Kernel, 4e6, TenantA);
  Scheduler.execute(Proc, Kernel, 4e6, TenantB);

  // Same kernel, two tenants, two records — and neither lives under the
  // raw kernel id an anonymous caller would use.
  EXPECT_EQ(Scheduler.history().size(), 2u);
  KernelRecord Rec;
  EXPECT_TRUE(
      Scheduler.history().lookup(namespacedKernelKey(1, Kernel.Id), Rec));
  EXPECT_TRUE(
      Scheduler.history().lookup(namespacedKernelKey(2, Kernel.Id), Rec));
  EXPECT_FALSE(Scheduler.history().lookup(Kernel.Id, Rec));
  EXPECT_TRUE(Scheduler.shutdown().ok());
}

//===----------------------------------------------------------------------===//
// Exit-code mapping
//===----------------------------------------------------------------------===//

TEST(ServeExit, Sla0MissOrShedStormExitsNonzero) {
  ServiceStats Clean;
  Clean.Submitted = 10;
  Clean.Completed = 10;
  EXPECT_EQ(serveExitCode(Clean, 0.5), 0);

  ServiceStats Missed = Clean;
  Missed.Sla0DeadlineMisses = 1;
  EXPECT_EQ(serveExitCode(Missed, 0.5), 1);

  ServiceStats Stormy;
  Stormy.Submitted = 10;
  Stormy.Shed = 6;
  Stormy.Completed = 4;
  EXPECT_EQ(serveExitCode(Stormy, 0.5), 1) << "60% shed over 50% threshold";
  EXPECT_EQ(serveExitCode(Stormy, 0.7), 0) << "under threshold";
}

//===----------------------------------------------------------------------===//
// ServiceFrontEnd
//===----------------------------------------------------------------------===//

TEST(Service, CompletesRequestsAndBalancesTheBooks) {
  EasScheduler Scheduler(desktopCurves(), Metric::edp(), {});
  ServiceConfig Config;
  Config.Workers = 2;
  Config.QueueCapPerClass = 32;
  ServiceFrontEnd Service(Scheduler, haswellDesktop(), Config);

  KernelDesc Kernel = namedKernel("svc");
  for (unsigned I = 0; I != 24; ++I) {
    RequestContext Ctx;
    Ctx.TenantId = 1 + I % 3;
    Ctx.Sla = slaFromIndex(I % NumSlaClasses);
    SubmitResult Result = Service.submit(Kernel, 4e6, Ctx);
    EXPECT_TRUE(Result.admitted()) << Result.Verdict.toString();
    EXPECT_EQ(Result.Sequence, I + 1u) << "sequences are monotone";
  }

  ServiceStats Stats = Service.shutdown();
  EXPECT_TRUE(Stats.consistent());
  EXPECT_EQ(Stats.Submitted, 24u);
  EXPECT_EQ(Stats.Completed, 24u);
  EXPECT_EQ(Stats.Rejected + Stats.Shed + Stats.Cancelled, 0u);

  // Every completion is one table-G invocation, keyed per tenant.
  uint64_t Recorded = 0;
  for (const auto &[Key, Rec] : Scheduler.history().entries())
    Recorded += Rec.Invocations;
  EXPECT_EQ(Recorded, Stats.Completed);
  EXPECT_EQ(Scheduler.history().size(), 3u) << "one record per tenant";
  EXPECT_TRUE(Scheduler.shutdown().ok());
}

TEST(Service, ShedsRequestsWhoseDeadlineExpiredWhileQueued) {
  EasScheduler Scheduler(desktopCurves(), Metric::edp(), {});
  obs::MetricsRegistry Registry;
  ServiceConfig Config;
  Config.Workers = 1;
  Config.Metrics = &Registry;
  // Step clock: the submit stamps enqueue time 0, every later reading
  // (the worker's dequeue) sees t=100 — deterministically past any
  // queued deadline without sleeping.
  auto Calls = std::make_shared<std::atomic<unsigned>>(0);
  Config.Clock = [Calls] {
    return Calls->fetch_add(1, std::memory_order_relaxed) == 0 ? 0.0 : 100.0;
  };
  ServiceFrontEnd Service(Scheduler, haswellDesktop(), Config);

  RequestContext Ctx;
  Ctx.TenantId = 7;
  Ctx.Sla = SlaClass::Sla0;
  Ctx.DeadlineSec = 50.0; // feasible at admission, expired at dequeue
  ASSERT_TRUE(Service.submit(namedKernel("shed-me"), 4e6, Ctx).admitted());

  ServiceStats Stats = Service.shutdown();
  EXPECT_TRUE(Stats.consistent());
  EXPECT_EQ(Stats.Shed, 1u);
  EXPECT_EQ(Stats.ShedBySla[0], 1u);
  EXPECT_EQ(Stats.Completed, 0u) << "shed strictly before dispatch";
  EXPECT_EQ(Stats.Sla0DeadlineMisses, 1u);
  EXPECT_EQ(serveExitCode(Stats, 0.99), 1) << "an SLA0 miss is never clean";
  EXPECT_EQ(Scheduler.history().size(), 0u)
      << "a shed request must not touch table G";
  EXPECT_EQ(Registry.snapshot().total(obs::names::ServiceShedTotal), 1.0);
  EXPECT_TRUE(Scheduler.shutdown().ok());
}

TEST(Service, RejectsSubmissionsAfterShutdown) {
  EasScheduler Scheduler(desktopCurves(), Metric::edp(), {});
  ServiceFrontEnd Service(Scheduler, haswellDesktop());
  ServiceStats First = Service.shutdown();
  EXPECT_TRUE(First.consistent());
  EXPECT_FALSE(Service.accepting());

  RequestContext Ctx;
  SubmitResult Result = Service.submit(namedKernel("late"), 1e6, Ctx);
  EXPECT_FALSE(Result.admitted());
  EXPECT_EQ(Result.Verdict.code(), ErrCode::Overloaded);
  EXPECT_EQ(Result.RetryAfterSec, 0.0) << "the service is not coming back";

  // Idempotent: a second shutdown returns the same (consistent) stats.
  ServiceStats Second = Service.shutdown();
  EXPECT_TRUE(Second.consistent());
  EXPECT_EQ(Second.Submitted, First.Submitted + 1);
  EXPECT_TRUE(Scheduler.shutdown().ok());
}

//===----------------------------------------------------------------------===//
// Chaos soak
//===----------------------------------------------------------------------===//

namespace {

/// Drives \p Tenants client threads x \p PerTenant mixed-SLA requests
/// through a service front end on a faulty platform and asserts the
/// invariants every soak must uphold: the accounting conservation law,
/// progress for every SLA class, per-tenant table-G consistency, and a
/// graceful, idempotent shutdown.
void runChaosSoak(const std::string &Scenario, unsigned Tenants,
                  unsigned PerTenant) {
  PlatformSpec Spec = faultySpec(Scenario);
  obs::MetricsRegistry Registry;
  EasConfig SchedulerConfig;
  SchedulerConfig.Metrics = &Registry;
  EasScheduler Scheduler(desktopCurves(), Metric::edp(), SchedulerConfig);

  ServiceConfig Config;
  Config.Workers = 3;
  Config.QueueCapPerClass = 8;
  Config.Metrics = &Registry;
  ServiceFrontEnd Service(Scheduler, Spec, Config);

  std::vector<KernelDesc> Kernels;
  for (unsigned I = 0; I != 4; ++I)
    Kernels.push_back(namedKernel("soak-" + std::to_string(I)));

  std::atomic<uint64_t> Admitted{0}, Bounced{0};
  std::vector<std::thread> Clients;
  for (unsigned T = 0; T != Tenants; ++T)
    Clients.emplace_back([&, T] {
      Xoshiro256 Rng(0xc0ffee + T);
      for (unsigned I = 0; I != PerTenant; ++I) {
        RequestContext Ctx;
        Ctx.TenantId = T + 1;
        Ctx.Sla = slaFromIndex(I % NumSlaClasses);
        // SLA0/SLA1 carry deadlines; some are born impossibly tight so
        // admission, shedding, and mid-flight cancellation all fire.
        if (Ctx.Sla == SlaClass::Sla0)
          Ctx.DeadlineSec = Rng.nextDouble(1e-5, 0.5);
        else if (Ctx.Sla == SlaClass::Sla1)
          Ctx.DeadlineSec = Rng.nextDouble(1e-3, 2.0);
        SubmitResult Result = Service.submit(
            Kernels[I % Kernels.size()], Rng.nextDouble(1e5, 8e6), Ctx);
        if (Result.admitted())
          ++Admitted;
        else
          ++Bounced;
        // Light pacing so the workers interleave with the producers:
        // without it the whole offered load bursts in before anything
        // drains and the soak only ever exercises the rejection path.
        if ((I & 7) == 0)
          std::this_thread::yield();
      }
    });
  for (std::thread &Client : Clients)
    Client.join();

  ServiceStats Stats = Service.shutdown();

  // The conservation law: nothing is lost, nothing is double-counted.
  EXPECT_TRUE(Stats.consistent())
      << Stats.Submitted << " != " << Stats.Rejected << " + " << Stats.Shed
      << " + " << Stats.Completed << " + " << Stats.Cancelled;
  EXPECT_EQ(Stats.Submitted, uint64_t(Tenants) * PerTenant);
  EXPECT_EQ(Stats.Rejected, Bounced.load());
  EXPECT_EQ(Stats.Shed + Stats.Completed + Stats.Cancelled, Admitted.load());

  // Fairness under overload: the strict class makes progress AND the
  // background class is not starved out by it.
  EXPECT_GT(Stats.CompletedBySla[slaIndex(SlaClass::Sla0)] +
                Stats.ShedBySla[slaIndex(SlaClass::Sla0)] +
                Stats.CancelledBySla[slaIndex(SlaClass::Sla0)],
            0u);
  EXPECT_GT(Stats.CompletedBySla[slaIndex(SlaClass::Sla2)], 0u)
      << "SLA2 must complete work even while SLA0/SLA1 flood the queue";

  // Table-G consistency: exactly one invocation per completion (shed
  // and cancelled requests must not inflate the learned history), and
  // every record lives under some tenant's namespaced key.
  uint64_t Recorded = 0;
  for (const auto &[Key, Rec] : Scheduler.history().entries()) {
    Recorded += Rec.Invocations;
    bool Namespaced = false;
    for (uint64_t T = 1; T <= Tenants && !Namespaced; ++T)
      for (const KernelDesc &Kernel : Kernels)
        if (Key == namespacedKernelKey(T, Kernel.Id)) {
          Namespaced = true;
          break;
        }
    EXPECT_TRUE(Namespaced) << "stray table-G key " << Key;
  }
  EXPECT_EQ(Recorded, Stats.Completed);

  // Shutdown is idempotent and final.
  ServiceStats Again = Service.shutdown();
  EXPECT_EQ(Again.Submitted, Stats.Submitted);
  RequestContext Late;
  EXPECT_FALSE(Service.submit(Kernels[0], 1e6, Late).admitted());
  EXPECT_TRUE(Scheduler.shutdown().ok());

  // The metrics taxonomy agrees with the stats it mirrors.
  obs::MetricsSnapshot Snapshot = Registry.snapshot();
  EXPECT_EQ(Snapshot.total(obs::names::ServiceSubmittedTotal),
            static_cast<double>(Stats.Submitted + 1)); // + the late probe
  EXPECT_EQ(Snapshot.total(obs::names::ServiceShedTotal),
            static_cast<double>(Stats.Shed));
  EXPECT_EQ(Snapshot.total(obs::names::ServiceCompletedTotal),
            static_cast<double>(Stats.Completed));
}

} // namespace

TEST(ChaosSoak, OverloadScenarioUpholdsEveryInvariant) {
  runChaosSoak("overload", 6, 250);
}

TEST(ChaosSoak, BurstyTenantScenarioUpholdsEveryInvariant) {
  runChaosSoak("bursty-tenant", 4, 250);
}
