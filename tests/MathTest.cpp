//===-- tests/MathTest.cpp - math/ unit tests ------------------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/math/Matrix.h"
#include "ecas/math/Minimize.h"
#include "ecas/math/PolyFit.h"
#include "ecas/math/Polynomial.h"
#include "ecas/support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ecas;

TEST(Matrix, MultiplyIdentity) {
  Matrix A(2, 3);
  A.at(0, 0) = 1;
  A.at(0, 1) = 2;
  A.at(0, 2) = 3;
  A.at(1, 0) = 4;
  A.at(1, 1) = 5;
  A.at(1, 2) = 6;
  Matrix I = Matrix::identity(3);
  Matrix P = A.multiply(I);
  for (size_t R = 0; R != 2; ++R)
    for (size_t C = 0; C != 3; ++C)
      EXPECT_DOUBLE_EQ(P.at(R, C), A.at(R, C));
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix A(3, 2);
  int V = 0;
  for (size_t R = 0; R != 3; ++R)
    for (size_t C = 0; C != 2; ++C)
      A.at(R, C) = ++V;
  Matrix T = A.transposed();
  EXPECT_EQ(T.rows(), 2u);
  EXPECT_EQ(T.cols(), 3u);
  Matrix Back = T.transposed();
  for (size_t R = 0; R != 3; ++R)
    for (size_t C = 0; C != 2; ++C)
      EXPECT_DOUBLE_EQ(Back.at(R, C), A.at(R, C));
}

TEST(Matrix, SolveLinearKnownSystem) {
  // 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
  Matrix A(2, 2);
  A.at(0, 0) = 2;
  A.at(0, 1) = 1;
  A.at(1, 0) = 1;
  A.at(1, 1) = -1;
  std::vector<double> X;
  ASSERT_TRUE(A.solveLinear({5.0, 1.0}, X));
  EXPECT_NEAR(X[0], 2.0, 1e-12);
  EXPECT_NEAR(X[1], 1.0, 1e-12);
}

TEST(Matrix, SolveLinearSingularFails) {
  Matrix A(2, 2);
  A.at(0, 0) = 1;
  A.at(0, 1) = 2;
  A.at(1, 0) = 2;
  A.at(1, 1) = 4;
  std::vector<double> X;
  EXPECT_FALSE(A.solveLinear({1.0, 2.0}, X));
}

TEST(Matrix, SolveLinearRandomRoundTrip) {
  Xoshiro256 Rng(42);
  for (int Trial = 0; Trial != 20; ++Trial) {
    const size_t N = 6;
    Matrix A(N, N);
    std::vector<double> Truth(N);
    for (size_t R = 0; R != N; ++R) {
      Truth[R] = Rng.nextDouble(-5.0, 5.0);
      for (size_t C = 0; C != N; ++C)
        A.at(R, C) = Rng.nextDouble(-1.0, 1.0);
      A.at(R, R) += 4.0; // Diagonally dominant: well-conditioned.
    }
    std::vector<double> B = A.multiply(Truth);
    std::vector<double> X;
    ASSERT_TRUE(A.solveLinear(B, X));
    for (size_t I = 0; I != N; ++I)
      EXPECT_NEAR(X[I], Truth[I], 1e-9);
  }
}

TEST(Matrix, LeastSquaresExactSystem) {
  // Overdetermined but consistent: y = 3x + 1 sampled at 5 points.
  Matrix A(5, 2);
  std::vector<double> B(5);
  for (size_t I = 0; I != 5; ++I) {
    double X = static_cast<double>(I);
    A.at(I, 0) = 1.0;
    A.at(I, 1) = X;
    B[I] = 3.0 * X + 1.0;
  }
  std::vector<double> Coef;
  ASSERT_TRUE(A.solveLeastSquares(B, Coef));
  EXPECT_NEAR(Coef[0], 1.0, 1e-10);
  EXPECT_NEAR(Coef[1], 3.0, 1e-10);
}

TEST(Matrix, LeastSquaresMinimizesResidual) {
  // Inconsistent system: the LS answer must beat nearby perturbations.
  Matrix A(4, 2);
  std::vector<double> B{1.0, 2.0, 1.5, 3.5};
  for (size_t I = 0; I != 4; ++I) {
    A.at(I, 0) = 1.0;
    A.at(I, 1) = static_cast<double>(I);
  }
  std::vector<double> Coef;
  ASSERT_TRUE(A.solveLeastSquares(B, Coef));
  auto Residual = [&](const std::vector<double> &C) {
    std::vector<double> Fit = A.multiply(C);
    double Sum = 0.0;
    for (size_t I = 0; I != 4; ++I)
      Sum += (Fit[I] - B[I]) * (Fit[I] - B[I]);
    return Sum;
  };
  double Best = Residual(Coef);
  for (double D0 : {-0.01, 0.01})
    for (double D1 : {-0.01, 0.01}) {
      std::vector<double> Perturbed{Coef[0] + D0, Coef[1] + D1};
      EXPECT_GE(Residual(Perturbed), Best);
    }
}

TEST(Polynomial, HornerEvaluation) {
  Polynomial P({1.0, -2.0, 3.0}); // 1 - 2x + 3x^2
  EXPECT_DOUBLE_EQ(P.evaluate(0.0), 1.0);
  EXPECT_DOUBLE_EQ(P.evaluate(1.0), 2.0);
  EXPECT_DOUBLE_EQ(P.evaluate(2.0), 9.0);
  EXPECT_EQ(P.degree(), 2u);
}

TEST(Polynomial, EmptyEvaluatesToZero) {
  Polynomial P;
  EXPECT_DOUBLE_EQ(P.evaluate(3.0), 0.0);
  EXPECT_TRUE(P.empty());
}

TEST(Polynomial, Derivative) {
  Polynomial P({5.0, 1.0, 2.0, 4.0}); // 5 + x + 2x^2 + 4x^3
  Polynomial D = P.derivative();      // 1 + 4x + 12x^2
  EXPECT_DOUBLE_EQ(D.evaluate(0.0), 1.0);
  EXPECT_DOUBLE_EQ(D.evaluate(1.0), 17.0);
  EXPECT_EQ(Polynomial({7.0}).derivative().evaluate(3.0), 0.0);
}

TEST(Polynomial, MinimumOnInterval) {
  // (x-0.3)^2 + 2 -> min 2 at 0.3.
  Polynomial P({2.09, -0.6, 1.0});
  double ArgMin;
  double Min = P.minimumOn(0.0, 1.0, ArgMin);
  EXPECT_NEAR(ArgMin, 0.3, 1e-6);
  EXPECT_NEAR(Min, 2.0, 1e-9);
  // Decreasing line: minimum at the right endpoint.
  Polynomial Line({1.0, -1.0});
  Min = Line.minimumOn(0.0, 1.0, ArgMin);
  EXPECT_DOUBLE_EQ(ArgMin, 1.0);
  EXPECT_DOUBLE_EQ(Min, 0.0);
}

TEST(Polynomial, EquationString) {
  Polynomial P({1.5, 0.0, -2.0});
  EXPECT_EQ(P.toEquationString(), "y = -2*x^2 + 1.5");
  EXPECT_EQ(Polynomial({0.0}).toEquationString(), "y = 0");
}

TEST(Polynomial, Arithmetic) {
  Polynomial A({1.0, 2.0});
  Polynomial B({0.0, 1.0, 3.0});
  Polynomial Sum = A.plus(B);
  EXPECT_DOUBLE_EQ(Sum.evaluate(2.0), A.evaluate(2.0) + B.evaluate(2.0));
  Polynomial Diff = A.minus(B);
  EXPECT_DOUBLE_EQ(Diff.evaluate(2.0), A.evaluate(2.0) - B.evaluate(2.0));
  EXPECT_DOUBLE_EQ(A.scaled(3.0).evaluate(2.0), 3.0 * A.evaluate(2.0));
}

/// Property sweep: fitting recovers exact polynomials of every degree
/// with both solver backends.
class PolyFitRecovery
    : public ::testing::TestWithParam<std::tuple<unsigned, FitMethod>> {};

TEST_P(PolyFitRecovery, RecoversExactCoefficients) {
  auto [Degree, Method] = GetParam();
  Xoshiro256 Rng(1000 + Degree);
  std::vector<double> Coeffs(Degree + 1);
  for (double &C : Coeffs)
    C = Rng.nextDouble(-3.0, 3.0);
  Polynomial Truth(Coeffs);

  std::vector<double> Xs, Ys;
  for (double X = 0.0; X <= 1.0 + 1e-9; X += 0.05) {
    Xs.push_back(X);
    Ys.push_back(Truth.evaluate(X));
  }
  auto Fit = fitPolynomial(Xs, Ys, Degree, Method);
  ASSERT_TRUE(Fit.has_value());
  EXPECT_GT(Fit->RSquared, 1.0 - 1e-9);
  for (double X = 0.0; X <= 1.0; X += 0.013)
    EXPECT_NEAR(Fit->Poly.evaluate(X), Truth.evaluate(X), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    DegreesAndMethods, PolyFitRecovery,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 6u, 8u),
                       ::testing::Values(FitMethod::QR,
                                         FitMethod::NormalEquations)));

TEST(PolyFit, UnderdeterminedReturnsNullopt) {
  EXPECT_FALSE(fitPolynomial({0.0, 1.0}, {1.0, 2.0}, 6).has_value());
}

TEST(PolyFit, DuplicateAbscissaeFail) {
  std::vector<double> Xs(10, 0.5), Ys(10, 1.0);
  EXPECT_FALSE(fitPolynomial(Xs, Ys, 3).has_value());
}

TEST(PolyFit, NoisyFitHasReasonableQuality) {
  Xoshiro256 Rng(77);
  Polynomial Truth({40.0, 10.0, -25.0, 12.0});
  std::vector<double> Xs, Ys;
  for (double X = 0.0; X <= 1.0 + 1e-9; X += 0.1) {
    Xs.push_back(X);
    Ys.push_back(Truth.evaluate(X) + Rng.nextDouble(-0.5, 0.5));
  }
  auto Fit = fitPolynomial(Xs, Ys, 6);
  ASSERT_TRUE(Fit.has_value());
  EXPECT_GT(Fit->RSquared, 0.99);
  EXPECT_LT(Fit->RmsError, 0.5);
}

TEST(Minimize, GridFindsSampledMinimum) {
  auto Fn = [](double X) { return (X - 0.42) * (X - 0.42); };
  MinResult R = minimizeOnGrid(Fn, 0.0, 1.0, 0.1);
  EXPECT_NEAR(R.ArgMin, 0.4, 1e-12);
  EXPECT_EQ(R.Evaluations, 11u);
}

TEST(Minimize, GridIncludesEndpoints) {
  auto Fn = [](double X) { return -X; }; // Minimum at the right end.
  MinResult R = minimizeOnGrid(Fn, 0.0, 1.0, 0.3);
  EXPECT_DOUBLE_EQ(R.ArgMin, 1.0);
}

TEST(Minimize, GoldenSectionConverges) {
  auto Fn = [](double X) { return std::cosh(X - 0.37); };
  MinResult R = minimizeGoldenSection(Fn, 0.0, 1.0, 1e-7);
  EXPECT_NEAR(R.ArgMin, 0.37, 1e-5);
}

TEST(Minimize, GridThenRefineBeatsPlainGrid) {
  auto Fn = [](double X) { return (X - 0.42) * (X - 0.42); };
  MinResult Grid = minimizeOnGrid(Fn, 0.0, 1.0, 0.1);
  MinResult Refined = minimizeGridThenRefine(Fn, 0.0, 1.0, 0.1, 1e-7);
  EXPECT_LE(Refined.Value, Grid.Value);
  EXPECT_NEAR(Refined.ArgMin, 0.42, 1e-4);
}

TEST(Minimize, RefineNeverWorseOnMultimodal) {
  // Two wells; grid finds the deeper one, refinement must not lose it.
  auto Fn = [](double X) {
    return std::min((X - 0.1) * (X - 0.1),
                    0.002 + (X - 0.9) * (X - 0.9));
  };
  MinResult Grid = minimizeOnGrid(Fn, 0.0, 1.0, 0.1);
  MinResult Refined = minimizeGridThenRefine(Fn, 0.0, 1.0, 0.1, 1e-7);
  EXPECT_LE(Refined.Value, Grid.Value + 1e-12);
}
