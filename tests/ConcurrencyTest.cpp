//===-- tests/ConcurrencyTest.cpp - concurrent service-core coverage ------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// The concurrent EAS service core under load: many client threads
/// hammering one shared scheduler (table G) with mixed kernels while a
/// fault plan injects GPU hangs — no lost invocation counts, no alpha
/// contributions dropped, no deadlock on shutdown. Plus the cooperative
/// cancellation surfaces: ThreadPool::parallelFor token polling, expired
/// deadlines, and the scheduler's guarantee that a cancelled invocation
/// never poisons the learned ratio.
///
/// This suite is the primary ThreadSanitizer target (ctest label `tsan`
/// in the tsan preset).
///
//===----------------------------------------------------------------------===//

#include "ecas/core/EasScheduler.h"
#include "ecas/core/KernelHistory.h"
#include "ecas/fault/FaultPlan.h"
#include "ecas/hw/Presets.h"
#include "ecas/power/Characterizer.h"
#include "ecas/runtime/ThreadPool.h"
#include "ecas/service/Service.h"
#include "ecas/support/Cancellation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

using namespace ecas;

namespace {

const PowerCurveSet &desktopCurves() {
  static PowerCurveSet Curves = Characterizer(haswellDesktop()).characterize();
  return Curves;
}

PlatformSpec faultySpec(const std::string &Scenario) {
  PlatformSpec Spec = haswellDesktop();
  ErrorOr<FaultPlan> Plan = FaultPlan::scenario(Scenario);
  EXPECT_TRUE(Plan.ok()) << Scenario;
  Spec.Faults = *Plan;
  return Spec;
}

KernelDesc namedKernel(const std::string &Name) {
  KernelDesc Kernel;
  Kernel.Name = Name;
  return Kernel.withAutoId();
}

} // namespace

//===----------------------------------------------------------------------===//
// Table G under concurrent mutation
//===----------------------------------------------------------------------===//

TEST(Concurrency, KernelHistoryLosesNoContributions) {
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 500;
  KernelHistory History;

  std::vector<std::thread> Clients;
  for (unsigned T = 0; T != Threads; ++T)
    Clients.emplace_back([&History, T] {
      for (unsigned I = 0; I != PerThread; ++I) {
        // Everyone merges into the shared kernel 1...
        History.update(1, [](KernelRecord &Rec) {
          Rec.Alpha.addSample(0.5, 1.0);
        });
        History.bumpInvocations(1);
        // ...and into a private kernel, exercising concurrent inserts
        // across shards.
        History.update(100 + T, [](KernelRecord &Rec) {
          Rec.Alpha.addSample(0.25, 2.0);
        });
        History.bumpQuarantinedRuns(100 + T);
      }
    });
  for (std::thread &Client : Clients)
    Client.join();

  EXPECT_EQ(History.size(), 1u + Threads);

  // The shared record saw every one of the Threads * PerThread merges:
  // weights are integral, so the sums are exact.
  std::optional<KernelRecord> Shared = History.find(1);
  ASSERT_TRUE(Shared.has_value());
  EXPECT_EQ(Shared->Alpha.totalWeight(), double(Threads) * PerThread);
  EXPECT_EQ(Shared->Alpha.weightedSum(), 0.5 * Threads * PerThread);
  EXPECT_EQ(Shared->Invocations, Threads * PerThread);

  for (unsigned T = 0; T != Threads; ++T) {
    std::optional<KernelRecord> Mine = History.find(100 + T);
    ASSERT_TRUE(Mine.has_value()) << "kernel " << (100 + T);
    EXPECT_EQ(Mine->Alpha.totalWeight(), 2.0 * PerThread);
    EXPECT_EQ(Mine->QuarantinedRuns, PerThread);
    EXPECT_EQ(Mine->Invocations, 0u);
  }
}

TEST(Concurrency, KernelHistoryReadersSeeConsistentVersions) {
  KernelHistory History;
  std::atomic<bool> Stop{false};

  // Writer keeps republishing versions; every published version has
  // alpha value exactly 0.5 (all samples are 0.5), so a reader that ever
  // observes anything else caught a torn record.
  std::thread Writer([&] {
    for (unsigned I = 0; I != 20000; ++I) {
      History.update(77, [](KernelRecord &Rec) {
        Rec.Alpha.addSample(0.5, 1.0);
      });
      History.bumpInvocations(77);
    }
    Stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> Readers;
  std::atomic<unsigned> Torn{0};
  for (unsigned R = 0; R != 4; ++R)
    Readers.emplace_back([&] {
      KernelRecord Rec;
      while (!Stop.load(std::memory_order_acquire))
        if (History.lookup(77, Rec) && Rec.Alpha.hasValue() &&
            Rec.Alpha.value() != 0.5)
          Torn.fetch_add(1, std::memory_order_relaxed);
    });

  Writer.join();
  for (std::thread &Reader : Readers)
    Reader.join();
  EXPECT_EQ(Torn.load(), 0u);

  std::optional<KernelRecord> Final = History.find(77);
  ASSERT_TRUE(Final.has_value());
  EXPECT_EQ(Final->Alpha.totalWeight(), 20000.0);
  EXPECT_EQ(Final->Invocations, 20000u);
}

//===----------------------------------------------------------------------===//
// ThreadPool cancellation points
//===----------------------------------------------------------------------===//

TEST(Concurrency, ParallelForStopsAtCancellation) {
  ThreadPool Pool(4);
  constexpr uint64_t N = 1u << 20;

  CancellationToken Cancel;
  std::atomic<uint64_t> Executed{0};
  uint64_t Ran = Pool.parallelFor(0, N, 256,
                                  [&](uint64_t Begin, uint64_t End) {
                                    Executed.fetch_add(
                                        End - Begin,
                                        std::memory_order_relaxed);
                                    if (Executed.load(
                                            std::memory_order_relaxed) >
                                        8192)
                                      Cancel.cancel();
                                  },
                                  &Cancel);

  // Cancellation is polled at range boundaries, so in-flight ranges
  // complete but the bulk of the space is discarded.
  EXPECT_LT(Ran, N);
  EXPECT_GT(Ran, 0u);
  // The return value is an exact count of executed iterations.
  EXPECT_EQ(Ran, Executed.load());
}

TEST(Concurrency, ParallelForWithExpiredDeadlineRunsNothing) {
  ThreadPool Pool(4);
  // Deadline 0 on the host steady clock is always in the past.
  CancellationToken Cancel = CancellationToken::withDeadline(0.0);
  std::atomic<uint64_t> Executed{0};
  uint64_t Ran = Pool.parallelFor(0, 1u << 16, 256,
                                  [&](uint64_t Begin, uint64_t End) {
                                    Executed.fetch_add(
                                        End - Begin,
                                        std::memory_order_relaxed);
                                  },
                                  &Cancel);
  EXPECT_EQ(Ran, 0u);
  EXPECT_EQ(Executed.load(), 0u);

  // The pool survives a cancelled job: the next (uncancelled) job runs
  // to completion.
  uint64_t Full = Pool.parallelFor(0, 1u << 16, 256,
                                   [](uint64_t, uint64_t) {});
  EXPECT_EQ(Full, uint64_t(1) << 16);
}

//===----------------------------------------------------------------------===//
// Scheduler deadlines
//===----------------------------------------------------------------------===//

TEST(Concurrency, ExpiredDeadlineCancelsWithoutPoisoningTableG) {
  EasScheduler Scheduler(desktopCurves(), Metric::edp());
  SimProcessor Proc(haswellDesktop());
  KernelDesc Kernel = namedKernel("deadline-probe");

  // Learn the kernel normally first.
  EasScheduler::InvocationOutcome First = Scheduler.execute(Proc, Kernel, 2e6);
  EXPECT_TRUE(First.Profiled);
  std::optional<KernelRecord> Before = Scheduler.history().find(Kernel.Id);
  ASSERT_TRUE(Before.has_value());

  // A deadline already expired on the virtual clock: the invocation is
  // cancelled at its entry point and must not touch what was learned.
  CancellationToken Expired = CancellationToken::withDeadline(Proc.now());
  EasScheduler::InvocationOutcome Cancelled =
      Scheduler.execute(Proc, Kernel, 2e6, Expired);
  EXPECT_TRUE(Cancelled.Cancelled);
  EXPECT_FALSE(Cancelled.Rejected);

  std::optional<KernelRecord> After = Scheduler.history().find(Kernel.Id);
  ASSERT_TRUE(After.has_value());
  EXPECT_EQ(After->Alpha.weightedSum(), Before->Alpha.weightedSum());
  EXPECT_EQ(After->Alpha.totalWeight(), Before->Alpha.totalWeight());
  // A cancelled invocation is not counted.
  EXPECT_EQ(After->Invocations, Before->Invocations);

  // A generous deadline leaves the invocation untouched.
  CancellationToken Roomy = CancellationToken::withDeadline(Proc.now() + 1e6);
  EasScheduler::InvocationOutcome Normal =
      Scheduler.execute(Proc, Kernel, 2e6, Roomy);
  EXPECT_FALSE(Normal.Cancelled);
  std::optional<KernelRecord> Counted = Scheduler.history().find(Kernel.Id);
  ASSERT_TRUE(Counted.has_value());
  EXPECT_EQ(Counted->Invocations, Before->Invocations + 1);
}

//===----------------------------------------------------------------------===//
// The acceptance stress: shared scheduler, faults, graceful shutdown
//===----------------------------------------------------------------------===//

TEST(Concurrency, SchedulerStressUnderFaultsLosesNoUpdates) {
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 120;
  constexpr unsigned Kernels = 4;

  PlatformSpec Spec = faultySpec("gpu-hang");
  std::vector<KernelDesc> Mixed;
  for (unsigned K = 0; K != Kernels; ++K)
    Mixed.push_back(namedKernel("stress-" + std::to_string(K)));

  EasScheduler Scheduler(desktopCurves(), Metric::edp());

  std::atomic<unsigned> Completed{0};
  std::atomic<unsigned> Rejected{0};
  std::atomic<unsigned> CancelledCount{0};
  std::vector<std::thread> Clients;
  for (unsigned T = 0; T != Threads; ++T)
    Clients.emplace_back([&, T] {
      // Each client is its own machine: private simulated processor and
      // virtual clock, shared table G and health monitor.
      SimProcessor Proc(Spec);
      for (unsigned I = 0; I != PerThread; ++I) {
        const KernelDesc &Kernel = Mixed[(T + I) % Kernels];
        // Vary sizes so both the small-N CPU pin and the profile path
        // are exercised concurrently.
        double Iterations = (I % 7 == 0) ? 1e3 : 2e6;
        EasScheduler::InvocationOutcome Outcome =
            Scheduler.execute(Proc, Kernel, Iterations);
        if (Outcome.Rejected)
          Rejected.fetch_add(1, std::memory_order_relaxed);
        else if (Outcome.Cancelled)
          CancelledCount.fetch_add(1, std::memory_order_relaxed);
        else
          Completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread &Client : Clients)
    Client.join();

  // Nothing was shutting down or cancelling, so everything completed.
  EXPECT_EQ(Rejected.load(), 0u);
  EXPECT_EQ(CancelledCount.load(), 0u);
  EXPECT_EQ(Completed.load(), Threads * PerThread);

  // No lost updates in table G: every completed invocation was counted
  // exactly once, whether it hit, profiled, or ran quarantined.
  auto Entries = Scheduler.history().entries();
  EXPECT_EQ(Entries.size(), Kernels);
  unsigned Recorded = 0;
  for (const auto &[Key, Rec] : Entries)
    Recorded += Rec.Invocations;
  EXPECT_EQ(Recorded, Completed.load());

  // Graceful shutdown with nothing in flight: immediate and clean.
  Status Down = Scheduler.shutdown();
  EXPECT_TRUE(Down.ok()) << Down.toString();
  EXPECT_FALSE(Scheduler.acceptingWork());

  // Post-shutdown admission is rejected without touching the table.
  SimProcessor Late(Spec);
  EasScheduler::InvocationOutcome Refused =
      Scheduler.execute(Late, Mixed[0], 2e6);
  EXPECT_TRUE(Refused.Rejected);
  unsigned RecordedAfter = 0;
  for (const auto &[Key, Rec] : Scheduler.history().entries())
    RecordedAfter += Rec.Invocations;
  EXPECT_EQ(RecordedAfter, Recorded);

  // Idempotent: a second shutdown returns the first call's result.
  EXPECT_TRUE(Scheduler.shutdown().ok());
}

TEST(Concurrency, ShutdownDrainsActiveClientsWithoutDeadlock) {
  PlatformSpec Spec = haswellDesktop();
  KernelDesc Kernel = namedKernel("drain-probe");
  EasScheduler Scheduler(desktopCurves(), Metric::edp());

  // Clients run until the admission gate turns them away.
  std::atomic<unsigned> Completed{0};
  std::vector<std::thread> Clients;
  for (unsigned T = 0; T != 4; ++T)
    Clients.emplace_back([&] {
      SimProcessor Proc(Spec);
      while (true) {
        EasScheduler::InvocationOutcome Outcome =
            Scheduler.execute(Proc, Kernel, 2e6);
        if (Outcome.Rejected)
          return;
        Completed.fetch_add(1, std::memory_order_relaxed);
      }
    });

  // Let them get in flight, then close the gate. A zero grace forces
  // the drain token path: stragglers stop at their next cancellation
  // point, so shutdown() must still return (no deadlock) and the
  // clients must all observe Rejected and exit.
  while (Completed.load(std::memory_order_relaxed) < 8)
    std::this_thread::yield();
  Status Down = Scheduler.shutdown(/*DrainGraceSec=*/0.0);
  EXPECT_TRUE(Down.ok()) << Down.toString();
  for (std::thread &Client : Clients)
    Client.join();

  EXPECT_FALSE(Scheduler.acceptingWork());
  EXPECT_GE(Completed.load(), 8u);
}

TEST(Concurrency, ConcurrentShutdownCallsAgree) {
  EasScheduler Scheduler(desktopCurves(), Metric::edp());
  SimProcessor Proc(haswellDesktop());
  Scheduler.execute(Proc, namedKernel("shutdown-race"), 2e6);

  // Many racers, one winner — everyone gets the same (ok) result and
  // nobody hangs.
  std::vector<std::thread> Racers;
  std::atomic<unsigned> Failures{0};
  for (unsigned T = 0; T != 4; ++T)
    Racers.emplace_back([&] {
      if (!Scheduler.shutdown().ok())
        Failures.fetch_add(1, std::memory_order_relaxed);
    });
  for (std::thread &Racer : Racers)
    Racer.join();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_FALSE(Scheduler.acceptingWork());
}

//===----------------------------------------------------------------------===//
// Service front-end edge cases under concurrency
//===----------------------------------------------------------------------===//

TEST(Concurrency, ZeroCapacityServiceRejectsEveryConcurrentSubmission) {
  EasScheduler Scheduler(desktopCurves(), Metric::edp());
  ServiceConfig Config;
  Config.Workers = 2;
  Config.QueueCapPerClass = 0; // permanently full: pure backpressure
  ServiceFrontEnd Service(Scheduler, haswellDesktop(), Config);

  constexpr unsigned Threads = 4;
  constexpr unsigned PerThread = 50;
  std::atomic<unsigned> Overloaded{0};
  std::vector<std::thread> Clients;
  for (unsigned T = 0; T != Threads; ++T)
    Clients.emplace_back([&, T] {
      KernelDesc Kernel = namedKernel("zero-cap");
      for (unsigned I = 0; I != PerThread; ++I) {
        RequestContext Ctx;
        Ctx.TenantId = T + 1;
        Ctx.Sla = slaFromIndex(I % NumSlaClasses);
        SubmitResult Result = Service.submit(Kernel, 1e6, Ctx);
        EXPECT_FALSE(Result.admitted());
        if (Result.Verdict.code() == ErrCode::Overloaded) {
          Overloaded.fetch_add(1, std::memory_order_relaxed);
          EXPECT_GT(Result.RetryAfterSec, 0.0);
        }
      }
    });
  for (std::thread &Client : Clients)
    Client.join();

  ServiceStats Stats = Service.shutdown();
  EXPECT_TRUE(Stats.consistent());
  EXPECT_EQ(Stats.Submitted, uint64_t(Threads) * PerThread);
  EXPECT_EQ(Stats.Rejected, Stats.Submitted) << "nothing can ever queue";
  EXPECT_EQ(Overloaded.load(), Stats.Submitted);
  EXPECT_EQ(Stats.Completed + Stats.Shed + Stats.Cancelled, 0u);
  EXPECT_TRUE(Scheduler.shutdown().ok());
}

TEST(Concurrency, ExpiredAtSubmitDeadlineIsRejectedNotQueued) {
  EasScheduler Scheduler(desktopCurves(), Metric::edp());
  ServiceFrontEnd Service(Scheduler, haswellDesktop());

  RequestContext Ctx;
  Ctx.TenantId = 1;
  Ctx.Sla = SlaClass::Sla0;
  Ctx.DeadlineSec = -1.0; // dead on arrival
  SubmitResult Result = Service.submit(namedKernel("doa"), 1e6, Ctx);
  EXPECT_FALSE(Result.admitted());
  EXPECT_EQ(Result.Verdict.code(), ErrCode::DeadlineInfeasible);
  EXPECT_EQ(Result.RetryAfterSec, 0.0) << "retrying cannot help";

  ServiceStats Stats = Service.shutdown();
  EXPECT_TRUE(Stats.consistent());
  EXPECT_EQ(Stats.Rejected, 1u);
  EXPECT_EQ(Stats.Shed, 0u) << "rejected at the door, never queued";
  EXPECT_TRUE(Scheduler.shutdown().ok());
}

TEST(Concurrency, NamespacedKeysStayCollisionFreeAcrossManyTenants) {
  // 200 tenants x 20 kernels sharing the same raw kernel ids: every
  // namespaced key must be distinct (and distinct from the raw ids an
  // anonymous caller maps to).
  std::set<uint64_t> Keys;
  for (uint64_t Kernel = 1; Kernel <= 20; ++Kernel)
    ASSERT_TRUE(Keys.insert(namespacedKernelKey(0, Kernel)).second);
  for (uint64_t Tenant = 1; Tenant <= 200; ++Tenant)
    for (uint64_t Kernel = 1; Kernel <= 20; ++Kernel) {
      uint64_t Key = namespacedKernelKey(Tenant, Kernel);
      EXPECT_NE(Key, 0u);
      EXPECT_TRUE(Keys.insert(Key).second)
          << "tenant " << Tenant << " kernel " << Kernel
          << " collided with an earlier key";
    }
}

TEST(Concurrency, ShutdownRacesProducersSpammingAFullQueue) {
  EasScheduler Scheduler(desktopCurves(), Metric::edp());
  ServiceConfig Config;
  Config.Workers = 2;
  Config.QueueCapPerClass = 2; // tiny lanes: pushes race the close
  Config.DrainGraceSec = 0.05; // force the hard-stop path quickly
  auto Service = std::make_unique<ServiceFrontEnd>(
      Scheduler, haswellDesktop(), Config);

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Submitted{0};
  std::vector<std::thread> Producers;
  for (unsigned T = 0; T != 4; ++T)
    Producers.emplace_back([&, T] {
      KernelDesc Kernel = namedKernel("spam");
      while (!Stop.load(std::memory_order_acquire)) {
        RequestContext Ctx;
        Ctx.TenantId = T + 1;
        Ctx.Sla = slaFromIndex(Submitted.load(std::memory_order_relaxed) %
                               NumSlaClasses);
        Service->submit(Kernel, 4e6, Ctx);
        Submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });

  // Let the lanes fill and the workers chew, then shut down while the
  // producers are still spamming: submit() must keep returning typed
  // rejections (never block, never crash) and shutdown must come back.
  while (Submitted.load(std::memory_order_relaxed) < 64)
    std::this_thread::yield();
  ServiceStats Stats = Service->shutdown();
  Stop.store(true, std::memory_order_release);
  for (std::thread &Producer : Producers)
    Producer.join();

  // The shutdown-time snapshot may straddle an in-progress submit (its
  // Submitted counted, its rejection not yet), so mid-race the law only
  // bounds one direction; once the producers have joined the books must
  // balance exactly.
  EXPECT_GE(Stats.Submitted,
            Stats.Rejected + Stats.Shed + Stats.Completed + Stats.Cancelled);
  ServiceStats Final = Service->stats();
  EXPECT_TRUE(Final.consistent());
  EXPECT_GE(Final.Submitted, Stats.Submitted);
  EXPECT_EQ(Final.Completed + Final.Shed + Final.Cancelled,
            Stats.Completed + Stats.Shed + Stats.Cancelled)
      << "post-shutdown submissions can only be rejected";
  Service.reset(); // destructor re-runs shutdown: must stay idempotent
  EXPECT_TRUE(Scheduler.shutdown().ok());
}
