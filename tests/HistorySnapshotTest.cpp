//===-- tests/HistorySnapshotTest.cpp - durable table-G snapshots ---------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Robustness coverage of the table-G snapshot format: exact round-trips
/// of the sample-weighted accumulators, rejection of truncated /
/// CRC-corrupt / version-mismatched files (always degrading to a cold
/// table, never aborting), tolerance of a stray temp file left by a
/// crashed writer, and end-to-end kill-and-restart recovery through
/// EasScheduler's HistoryFile plumbing.
///
//===----------------------------------------------------------------------===//

#include "ecas/core/EasScheduler.h"
#include "ecas/core/HistorySnapshot.h"
#include "ecas/core/KernelHistory.h"
#include "ecas/hw/Presets.h"
#include "ecas/power/Characterizer.h"
#include "ecas/support/Crc32.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

using namespace ecas;

namespace {

/// A per-test scratch path; removes the file (and its temp sibling) on
/// destruction so tests cannot observe each other's snapshots.
class ScratchFile {
public:
  explicit ScratchFile(const std::string &Name)
      : Path(::testing::TempDir() + "ecas-" + Name + ".tblg") {
    std::remove(Path.c_str());
    std::remove((Path + ".tmp").c_str());
  }
  ~ScratchFile() {
    std::remove(Path.c_str());
    std::remove((Path + ".tmp").c_str());
  }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

std::string readFile(const std::string &Path) {
  std::ifstream File(Path, std::ios::binary);
  EXPECT_TRUE(File.good()) << Path;
  return std::string(std::istreambuf_iterator<char>(File),
                     std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream File(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(File.good()) << Path;
  File.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

bool fileExists(const std::string &Path) {
  return std::ifstream(Path).good();
}

/// A table with enough variety to exercise every encoded field.
void populate(KernelHistory &History) {
  History.update(7, [](KernelRecord &Rec) {
    Rec.Alpha.addSample(0.7, 1.0e6);
    Rec.Alpha.addSample(0.55, 3.0e5);
    Rec.Class = WorkloadClass::fromIndex(3);
    Rec.Confident = true;
    Rec.Sample.CpuThroughput = 1.25e8;
    Rec.Sample.GpuThroughput = 4.5e8;
    Rec.Sample.CpuIterations = 6.0e5;
    Rec.Sample.GpuIterations = 1.3e6;
    Rec.Sample.ElapsedSeconds = 4.8e-3;
    Rec.Sample.CpuBusySeconds = 4.1e-3;
    Rec.Sample.GpuBusySeconds = 2.9e-3;
    Rec.Sample.MissPerLoadStore = 0.37;
    Rec.Sample.InstructionsRetired = 9.9e6;
    Rec.PState = 2;
  });
  for (int I = 0; I != 5; ++I)
    History.bumpInvocations(7);
  History.update(11, [](KernelRecord &Rec) {
    Rec.CpuOnly = true;
    Rec.Class = WorkloadClass::fromIndex(1);
  });
  History.bumpInvocations(11);
  History.bumpQuarantinedRuns(11);
  History.update(9001, [](KernelRecord &Rec) {
    // An alpha produced by an irrational-weight accumulation: the
    // round-trip must reproduce the *parts* bit-exactly, not a rounded
    // value().
    Rec.Alpha.addSample(1.0 / 3.0, 123456.789);
    Rec.Sample.GpuHung = true;
    Rec.Sample.GpuLaunchFailed = true;
  });
}

void expectSameEntries(const KernelHistory &A, const KernelHistory &B) {
  auto Ea = A.entries();
  auto Eb = B.entries();
  ASSERT_EQ(Ea.size(), Eb.size());
  for (size_t I = 0; I != Ea.size(); ++I) {
    SCOPED_TRACE("kernel " + std::to_string(Ea[I].first));
    EXPECT_EQ(Ea[I].first, Eb[I].first);
    const KernelRecord &Ra = Ea[I].second;
    const KernelRecord &Rb = Eb[I].second;
    // Bit-exact: the accumulator parts must survive so future
    // sample-weighted merges blend against the true history.
    EXPECT_EQ(Ra.Alpha.weightedSum(), Rb.Alpha.weightedSum());
    EXPECT_EQ(Ra.Alpha.totalWeight(), Rb.Alpha.totalWeight());
    EXPECT_EQ(Ra.Class.index(), Rb.Class.index());
    EXPECT_EQ(Ra.CpuOnly, Rb.CpuOnly);
    EXPECT_EQ(Ra.Confident, Rb.Confident);
    EXPECT_EQ(Ra.Invocations, Rb.Invocations);
    EXPECT_EQ(Ra.QuarantinedRuns, Rb.QuarantinedRuns);
    EXPECT_EQ(Ra.Sample.CpuThroughput, Rb.Sample.CpuThroughput);
    EXPECT_EQ(Ra.Sample.GpuThroughput, Rb.Sample.GpuThroughput);
    EXPECT_EQ(Ra.Sample.CpuIterations, Rb.Sample.CpuIterations);
    EXPECT_EQ(Ra.Sample.GpuIterations, Rb.Sample.GpuIterations);
    EXPECT_EQ(Ra.Sample.ElapsedSeconds, Rb.Sample.ElapsedSeconds);
    EXPECT_EQ(Ra.Sample.CpuBusySeconds, Rb.Sample.CpuBusySeconds);
    EXPECT_EQ(Ra.Sample.GpuBusySeconds, Rb.Sample.GpuBusySeconds);
    EXPECT_EQ(Ra.Sample.MissPerLoadStore, Rb.Sample.MissPerLoadStore);
    EXPECT_EQ(Ra.Sample.InstructionsRetired, Rb.Sample.InstructionsRetired);
    EXPECT_EQ(Ra.Sample.GpuLaunchFailed, Rb.Sample.GpuLaunchFailed);
    EXPECT_EQ(Ra.Sample.GpuHung, Rb.Sample.GpuHung);
    EXPECT_EQ(Ra.PState, Rb.PState);
  }
}

} // namespace

TEST(HistorySnapshot, RoundTripIsExact) {
  KernelHistory Original;
  populate(Original);

  std::string Bytes = serializeKernelHistory(Original);
  EXPECT_EQ(Bytes.size(), 24u + 8u + 3u * 116u);

  KernelHistory Restored;
  ErrorOr<size_t> Count = deserializeKernelHistory(Restored, Bytes);
  ASSERT_TRUE(Count.ok()) << Count.status().toString();
  EXPECT_EQ(*Count, 3u);
  expectSameEntries(Original, Restored);
}

// A snapshot written before the DVFS axis (v2: 112-byte records, no
// trailing P-state) must load on a v3 reader with every record at
// P-state 0 and all other fields bit-exact.
TEST(HistorySnapshot, V2SnapshotLoadsWithPStateZero) {
  KernelHistory Original;
  populate(Original);
  std::string V3 = serializeKernelHistory(Original, /*Epoch=*/17);

  // Rebuild the file as a v2 writer would have: same header layout,
  // version 2, epoch prefix, records minus their last 4 bytes.
  constexpr size_t Header = 24, Epoch = 8, RecV3 = 116, RecV2 = 112;
  ASSERT_EQ(V3.size(), Header + Epoch + 3 * RecV3);
  std::string V2 = V3.substr(0, Header + Epoch);
  for (size_t I = 0; I != 3; ++I)
    V2 += V3.substr(Header + Epoch + I * RecV3, RecV2);
  V2[8] = 2; // u32 LE version
  uint32_t Crc = crc32(V2.data() + Header, V2.size() - Header);
  for (int B = 0; B != 4; ++B)
    V2[20 + B] = static_cast<char>((Crc >> (8 * B)) & 0xff);

  KernelHistory Restored;
  uint64_t EpochOut = 0;
  ErrorOr<size_t> Count = deserializeKernelHistory(Restored, V2, &EpochOut);
  ASSERT_TRUE(Count.ok()) << Count.status().toString();
  EXPECT_EQ(*Count, 3u);
  EXPECT_EQ(EpochOut, 17u);
  for (const auto &[Key, Rec] : Restored.entries())
    EXPECT_EQ(Rec.PState, 0u) << "kernel " << Key;
  // Everything except the P-state survives bit-exactly.
  auto Ea = Original.entries();
  auto Eb = Restored.entries();
  ASSERT_EQ(Ea.size(), Eb.size());
  for (size_t I = 0; I != Ea.size(); ++I) {
    EXPECT_EQ(Ea[I].second.Alpha.weightedSum(),
              Eb[I].second.Alpha.weightedSum());
    EXPECT_EQ(Ea[I].second.Invocations, Eb[I].second.Invocations);
    EXPECT_EQ(Ea[I].second.Sample.MissPerLoadStore,
              Eb[I].second.Sample.MissPerLoadStore);
  }
}

TEST(HistorySnapshot, SaveAndLoadRoundTrip) {
  ScratchFile File("save-load");
  KernelHistory Original;
  populate(Original);

  Status Saved = saveKernelHistory(Original, File.path());
  ASSERT_TRUE(Saved.ok()) << Saved.toString();
  // The atomic-write protocol must not leave its temp file behind.
  EXPECT_FALSE(fileExists(File.path() + ".tmp"));

  KernelHistory Restored;
  ErrorOr<size_t> Count = loadKernelHistory(Restored, File.path());
  ASSERT_TRUE(Count.ok()) << Count.status().toString();
  EXPECT_EQ(*Count, 3u);
  expectSameEntries(Original, Restored);
}

TEST(HistorySnapshot, MissingFileIsColdStart) {
  ScratchFile File("missing");
  KernelHistory History;
  populate(History);

  ErrorOr<size_t> Count = loadKernelHistory(History, File.path());
  ASSERT_TRUE(Count.ok()) << Count.status().toString();
  EXPECT_EQ(*Count, 0u);
  // Load replaces contents even on a cold start.
  EXPECT_EQ(History.size(), 0u);
}

TEST(HistorySnapshot, TruncatedFileIsRejected) {
  ScratchFile File("truncated");
  KernelHistory Original;
  populate(Original);
  ASSERT_TRUE(saveKernelHistory(Original, File.path()).ok());

  std::string Bytes = readFile(File.path());
  writeFile(File.path(), Bytes.substr(0, Bytes.size() - 10));

  KernelHistory Restored;
  Restored.bumpInvocations(42); // pre-existing state must not survive
  ErrorOr<size_t> Count = loadKernelHistory(Restored, File.path());
  ASSERT_FALSE(Count.ok());
  EXPECT_EQ(Count.status().code(), ErrCode::Truncated);
  EXPECT_EQ(Restored.size(), 0u);

  // Even the header can be cut short.
  writeFile(File.path(), Bytes.substr(0, 12));
  ErrorOr<size_t> Short = loadKernelHistory(Restored, File.path());
  ASSERT_FALSE(Short.ok());
  EXPECT_EQ(Short.status().code(), ErrCode::Truncated);
}

TEST(HistorySnapshot, CorruptPayloadFailsCrc) {
  ScratchFile File("crc");
  KernelHistory Original;
  populate(Original);
  ASSERT_TRUE(saveKernelHistory(Original, File.path()).ok());

  std::string Bytes = readFile(File.path());
  Bytes[40] = static_cast<char>(Bytes[40] ^ 0x5a); // inside the payload
  writeFile(File.path(), Bytes);

  KernelHistory Restored;
  ErrorOr<size_t> Count = loadKernelHistory(Restored, File.path());
  ASSERT_FALSE(Count.ok());
  EXPECT_EQ(Count.status().code(), ErrCode::CorruptData);
  EXPECT_EQ(Restored.size(), 0u);
}

TEST(HistorySnapshot, BadMagicIsRejected) {
  ScratchFile File("magic");
  KernelHistory Original;
  populate(Original);
  std::string Bytes = serializeKernelHistory(Original);
  Bytes[0] = 'X';

  KernelHistory Restored;
  ErrorOr<size_t> Count = deserializeKernelHistory(Restored, Bytes);
  ASSERT_FALSE(Count.ok());
  EXPECT_EQ(Count.status().code(), ErrCode::CorruptData);
  EXPECT_EQ(Restored.size(), 0u);
}

TEST(HistorySnapshot, VersionMismatchIsRejected) {
  ScratchFile File("version");
  KernelHistory Original;
  populate(Original);
  std::string Bytes = serializeKernelHistory(Original);
  Bytes[8] = static_cast<char>(HistorySnapshotVersion + 1); // u32 LE version

  writeFile(File.path(), Bytes);
  KernelHistory Restored;
  ErrorOr<size_t> Count = loadKernelHistory(Restored, File.path());
  ASSERT_FALSE(Count.ok());
  EXPECT_EQ(Count.status().code(), ErrCode::VersionMismatch);
  EXPECT_EQ(Restored.size(), 0u);
}

TEST(HistorySnapshot, LeftoverTempFileIsHarmless) {
  ScratchFile File("leftover-tmp");
  // A writer that crashed mid-write leaves <path>.tmp but never touches
  // the destination.
  writeFile(File.path() + ".tmp", "torn partial garbage");

  // With no destination file the restart is a cold start...
  KernelHistory Restored;
  ErrorOr<size_t> Cold = loadKernelHistory(Restored, File.path());
  ASSERT_TRUE(Cold.ok()) << Cold.status().toString();
  EXPECT_EQ(*Cold, 0u);

  // ...and the next save replaces the stray temp and publishes intact.
  KernelHistory Original;
  populate(Original);
  ASSERT_TRUE(saveKernelHistory(Original, File.path()).ok());
  EXPECT_FALSE(fileExists(File.path() + ".tmp"));
  ErrorOr<size_t> Count = loadKernelHistory(Restored, File.path());
  ASSERT_TRUE(Count.ok()) << Count.status().toString();
  EXPECT_EQ(*Count, 3u);
  expectSameEntries(Original, Restored);
}

TEST(HistorySnapshot, SaveOverwritesExistingSnapshot) {
  ScratchFile File("overwrite");
  KernelHistory First;
  First.update(1, [](KernelRecord &Rec) { Rec.Alpha.addSample(0.2, 10.0); });
  ASSERT_TRUE(saveKernelHistory(First, File.path()).ok());

  KernelHistory Second;
  populate(Second);
  ASSERT_TRUE(saveKernelHistory(Second, File.path()).ok());

  KernelHistory Restored;
  ErrorOr<size_t> Count = loadKernelHistory(Restored, File.path());
  ASSERT_TRUE(Count.ok()) << Count.status().toString();
  EXPECT_EQ(*Count, 3u);
  expectSameEntries(Second, Restored);
}

//===----------------------------------------------------------------------===//
// End-to-end: the scheduler's HistoryFile plumbing
//===----------------------------------------------------------------------===//

namespace {

const PowerCurveSet &desktopCurves() {
  static PowerCurveSet Curves = Characterizer(haswellDesktop()).characterize();
  return Curves;
}

KernelDesc namedKernel(const std::string &Name) {
  KernelDesc Kernel;
  Kernel.Name = Name;
  return Kernel.withAutoId();
}

} // namespace

TEST(HistorySnapshot, SchedulerRecoversIdenticalAlphasAfterRestart) {
  ScratchFile File("scheduler-restart");
  PlatformSpec Spec = haswellDesktop();
  KernelDesc KernelA = namedKernel("restart-a");
  KernelDesc KernelB = namedKernel("restart-b");

  EasConfig Config;
  Config.HistoryFile = File.path();

  std::vector<std::pair<uint64_t, KernelRecord>> Learned;
  {
    EasScheduler Scheduler(desktopCurves(), Metric::edp(), Config);
    EXPECT_TRUE(Scheduler.restoreStatus().ok());
    EXPECT_EQ(Scheduler.restoredRecords(), 0u);
    SimProcessor Proc(Spec);
    for (int I = 0; I != 6; ++I) {
      Scheduler.execute(Proc, KernelA, 2e6);
      Scheduler.execute(Proc, KernelB, 1e6);
    }
    Learned = Scheduler.history().entries();
    ASSERT_EQ(Learned.size(), 2u);
    Status Down = Scheduler.shutdown();
    EXPECT_TRUE(Down.ok()) << Down.toString();
  } // the destructor's shutdown() must be a no-op after the explicit one

  EasScheduler Restarted(desktopCurves(), Metric::edp(), Config);
  EXPECT_TRUE(Restarted.restoreStatus().ok())
      << Restarted.restoreStatus().toString();
  EXPECT_EQ(Restarted.restoredRecords(), 2u);

  auto Recovered = Restarted.history().entries();
  ASSERT_EQ(Recovered.size(), Learned.size());
  for (size_t I = 0; I != Learned.size(); ++I) {
    EXPECT_EQ(Recovered[I].first, Learned[I].first);
    // The kill-and-restart guarantee: identical learned alphas.
    EXPECT_EQ(Recovered[I].second.Alpha.weightedSum(),
              Learned[I].second.Alpha.weightedSum());
    EXPECT_EQ(Recovered[I].second.Alpha.totalWeight(),
              Learned[I].second.Alpha.totalWeight());
    EXPECT_EQ(Recovered[I].second.Invocations,
              Learned[I].second.Invocations);
  }

  // The restored table is live history, not an archive: the known
  // kernels hit the table-G fast path instead of re-profiling.
  SimProcessor Proc(Spec);
  EasScheduler::InvocationOutcome Hit = Restarted.execute(Proc, KernelA, 2e6);
  EXPECT_FALSE(Hit.Profiled);
  EXPECT_FALSE(Hit.Rejected);
}

TEST(HistorySnapshot, SchedulerDegradesToColdTableOnCorruptSnapshot) {
  ScratchFile File("scheduler-corrupt");
  writeFile(File.path(), "this is not a table-G snapshot at all.......");

  EasConfig Config;
  Config.HistoryFile = File.path();
  EasScheduler Scheduler(desktopCurves(), Metric::edp(), Config);

  // The corruption is reported, not fatal: cold table, still serving.
  EXPECT_FALSE(Scheduler.restoreStatus().ok());
  EXPECT_EQ(Scheduler.restoredRecords(), 0u);
  EXPECT_EQ(Scheduler.history().size(), 0u);

  SimProcessor Proc(haswellDesktop());
  KernelDesc Kernel = namedKernel("after-corruption");
  EasScheduler::InvocationOutcome Outcome = Scheduler.execute(Proc, Kernel, 2e6);
  EXPECT_FALSE(Outcome.Rejected);
  EXPECT_TRUE(Outcome.Profiled);

  // Shutdown replaces the corrupt file with a valid snapshot.
  ASSERT_TRUE(Scheduler.shutdown().ok());
  KernelHistory Reloaded;
  ErrorOr<size_t> Count = loadKernelHistory(Reloaded, File.path());
  ASSERT_TRUE(Count.ok()) << Count.status().toString();
  EXPECT_EQ(*Count, 1u);
}
