//===-- tests/ThreadSafetyNegative.cpp - Analysis must reject this ----------===//
//
// Part of the ecas project, under the MIT License.
//
// NOT part of any build target. The CI static-analysis job compiles this
// file with `clang++ -fsyntax-only -Wthread-safety -Werror` and asserts
// the compile FAILS — proving the annotation macros are live under clang
// and actually reject unguarded access, not just that the clean tree
// happens to build. If this file ever compiles under those flags, the
// analysis has been silently disabled and the job errors out.
//
//===----------------------------------------------------------------------===//

#include "ecas/support/ThreadAnnotations.h"

namespace {

class Counter {
public:
  // Violation 1: writes a guarded field without holding the mutex.
  void incrementUnlocked() { Value += 1; }

  // Violation 2: declares the requirement but the caller below does not
  // satisfy it.
  void incrementLocked() ECAS_REQUIRES(Mutex) { Value += 1; }

  void callWithoutLock() { incrementLocked(); }

  // Violation 3: returns with the lock still held (no unlock on the
  // early path).
  int readLeakingLock() {
    Mutex.lock();
    if (Value > 0)
      return Value;
    Mutex.unlock();
    return 0;
  }

private:
  ecas::AnnotatedMutex Mutex{"Negative.Counter"};
  int Value ECAS_GUARDED_BY(Mutex) = 0;
};

} // namespace

int main() {
  Counter C;
  C.incrementUnlocked();
  C.callWithoutLock();
  return C.readLeakingLock();
}
