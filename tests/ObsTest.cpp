//===-- tests/ObsTest.cpp - Observability layer ---------------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Coverage of the observability tentpole: multi-threaded recording into
/// the per-thread buffers, ScopedSpan pairing, the Chrome trace-event
/// exporter and its parser (round trip + malformed-input rejection), the
/// CSV and summary sinks, the unified ExecutionSession::run() API with
/// SchemeKind, EasConfig::validate(), and the two invariants the design
/// stands on: a null recorder leaves scheduling bit-identical, and an
/// attached recorder never perturbs the decisions it observes.
///
//===----------------------------------------------------------------------===//

#include "ecas/cl/MiniCl.h"
#include "ecas/core/ExecutionSession.h"
#include "ecas/fault/FaultPlan.h"
#include "ecas/hw/Presets.h"
#include "ecas/obs/ChromeTrace.h"
#include "ecas/obs/Sinks.h"
#include "ecas/obs/Trace.h"
#include "ecas/power/Characterizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

using namespace ecas;

namespace {

KernelDesc testKernel(const char *Name = "obs-probe") {
  KernelDesc Kernel;
  Kernel.Name = Name;
  return Kernel.withAutoId();
}

InvocationTrace shortTrace(unsigned Invocations = 40,
                           double Iterations = 2e6) {
  InvocationTrace Trace;
  for (unsigned I = 0; I != Invocations; ++I)
    Trace.push_back({testKernel(), Iterations});
  return Trace;
}

const PowerCurveSet &desktopCurves() {
  static PowerCurveSet Curves = Characterizer(haswellDesktop()).characterize();
  return Curves;
}

PlatformSpec faultySpec(const std::string &Scenario) {
  PlatformSpec Spec = haswellDesktop();
  ErrorOr<FaultPlan> Plan = FaultPlan::scenario(Scenario);
  EXPECT_TRUE(Plan.ok()) << Scenario;
  Spec.Faults = *Plan;
  return Spec;
}

/// The numeric fields two reports must share for runs to count as
/// bit-identical (string/enum bookkeeping is checked separately).
void expectSameMeasurement(const SessionReport &A, const SessionReport &B) {
  EXPECT_EQ(A.Seconds, B.Seconds);
  EXPECT_EQ(A.Joules, B.Joules);
  EXPECT_EQ(A.MetricValue, B.MetricValue);
  EXPECT_EQ(A.MeanAlpha, B.MeanAlpha);
  EXPECT_EQ(A.Invocations, B.Invocations);
}

} // namespace

//===----------------------------------------------------------------------===//
// TraceRecorder
//===----------------------------------------------------------------------===//

TEST(TraceRecorder, RecordsSpansInstantsAndCounters) {
  obs::TraceRecorder Rec;
  Rec.beginSpan("t", "outer");
  Rec.instant("t", "tick", 1.5, "n=1");
  Rec.count("t.events", 2.0);
  Rec.count("t.events");
  Rec.endSpan("t", "outer");

  obs::TraceLog Log = Rec.drain();
  ASSERT_EQ(Log.Events.size(), 5u);
  EXPECT_EQ(Log.Events.front().Kind, obs::EventKind::SpanBegin);
  EXPECT_EQ(Log.Events.back().Kind, obs::EventKind::SpanEnd);
  EXPECT_EQ(Log.countNamed("tick"), 1u);
  EXPECT_DOUBLE_EQ(Log.counterTotal("t.events"), 3.0);
  EXPECT_DOUBLE_EQ(Log.counterTotal("never-fired"), 0.0);
  ASSERT_EQ(Log.Counters.size(), 1u);
  EXPECT_EQ(Log.Counters.front().Samples, 2u);
  EXPECT_EQ(Rec.eventsRecorded(), 5u);
}

TEST(TraceRecorder, VirtualTimestampsAreOptional) {
  obs::TraceRecorder Rec;
  Rec.instant("t", "with-virtual", 2.25);
  Rec.instant("t", "host-only");
  obs::TraceLog Log = Rec.drain();
  ASSERT_EQ(Log.Events.size(), 2u);
  EXPECT_TRUE(Log.Events[0].hasVirtualTime());
  EXPECT_DOUBLE_EQ(Log.Events[0].VirtualSeconds, 2.25);
  EXPECT_FALSE(Log.Events[1].hasVirtualTime());
}

TEST(TraceRecorder, ConcurrentWritersMergeInOrder) {
  obs::TraceRecorder Rec;
  constexpr unsigned Threads = 4;
  constexpr unsigned PerThread = 2000; // > one 512-event chunk each
  std::vector<std::thread> Writers;
  for (unsigned T = 0; T != Threads; ++T)
    Writers.emplace_back([&Rec] {
      for (unsigned I = 0; I != PerThread; ++I) {
        Rec.count("mt.count");
        Rec.instant("mt", "spin");
      }
    });
  for (std::thread &W : Writers)
    W.join();

  obs::TraceLog Log = Rec.drain();
  EXPECT_EQ(Log.Events.size(), size_t{2} * Threads * PerThread);
  EXPECT_DOUBLE_EQ(Log.counterTotal("mt.count"),
                   double(Threads) * PerThread);
  for (size_t I = 1; I < Log.Events.size(); ++I)
    EXPECT_LE(Log.Events[I - 1].HostSeconds, Log.Events[I].HostSeconds);
}

TEST(TraceRecorder, DrainWhileRecordingSeesAPrefix) {
  obs::TraceRecorder Rec;
  for (unsigned I = 0; I != 100; ++I)
    Rec.count("pre.drain");
  obs::TraceLog First = Rec.drain();
  for (unsigned I = 0; I != 50; ++I)
    Rec.count("pre.drain");
  obs::TraceLog Second = Rec.drain();
  EXPECT_DOUBLE_EQ(First.counterTotal("pre.drain"), 100.0);
  EXPECT_DOUBLE_EQ(Second.counterTotal("pre.drain"), 150.0);
}

TEST(ScopedSpan, NullRecorderIsANoOp) {
  obs::ScopedSpan Span(nullptr, "t", "nothing");
  Span.setEndDetail("ignored");
  // Nothing to assert beyond "does not crash": the null recorder is the
  // no-op path every un-traced call site takes.
}

TEST(ScopedSpan, EmitsPairedBeginEndWithVirtualClock) {
  obs::TraceRecorder Rec;
  double Virtual = 10.0;
  {
    obs::ScopedSpan Outer(&Rec, "t", "outer", [&Virtual] { return Virtual; });
    Virtual = 11.5; // the end edge must re-read the clock
    obs::ScopedSpan Inner(&Rec, "t", "inner");
    Inner.setEndDetail("done");
  }
  obs::TraceLog Log = Rec.drain();
  ASSERT_EQ(Log.Events.size(), 4u);
  EXPECT_STREQ(Log.Events[0].Name, "outer");
  EXPECT_STREQ(Log.Events[1].Name, "inner");
  EXPECT_STREQ(Log.Events[2].Name, "inner"); // inner ends first (RAII)
  EXPECT_STREQ(Log.Events[3].Name, "outer");
  EXPECT_EQ(Log.Events[2].Detail, "done");
  EXPECT_DOUBLE_EQ(Log.Events[0].VirtualSeconds, 10.0);
  EXPECT_DOUBLE_EQ(Log.Events[3].VirtualSeconds, 11.5);
}

//===----------------------------------------------------------------------===//
// Sinks
//===----------------------------------------------------------------------===//

TEST(Sinks, NullSinkTalliesAndCsvRendersEveryRow) {
  obs::TraceRecorder Rec;
  Rec.beginSpan("t", "work");
  Rec.count("t.n", 5.0);
  Rec.endSpan("t", "work");

  obs::NullSink Null;
  EXPECT_TRUE(Rec.drainTo(Null).ok());
  EXPECT_EQ(Null.consumed(), 3u);

  obs::CsvTraceSink Csv;
  ASSERT_TRUE(Rec.drainTo(Csv).ok());
  std::string Rendered = Csv.render();
  EXPECT_EQ(Rendered.rfind("kind,category,name,host_sec", 0), 0u);
  EXPECT_NE(Rendered.find("span-begin"), std::string::npos);
  EXPECT_NE(Rendered.find("counter-total"), std::string::npos);
  // Three events + one counter-total row (the header is separate).
  EXPECT_EQ(Csv.table().numRows(), 4u);
}

TEST(Sinks, SummaryReportsSpanDurationsAndCounters) {
  obs::TraceRecorder Rec;
  {
    obs::ScopedSpan Span(&Rec, "t", "phase");
  }
  Rec.instant("t", "blip");
  Rec.count("t.total", 7.0);
  obs::SummarySink Summary;
  ASSERT_TRUE(Rec.drainTo(Summary).ok());
  const std::string &Text = Summary.text();
  EXPECT_NE(Text.find("phase"), std::string::npos);
  EXPECT_NE(Text.find("blip"), std::string::npos);
  EXPECT_NE(Text.find("t.total"), std::string::npos);
  EXPECT_NE(Text.find("7 (1 samples)"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Chrome trace export
//===----------------------------------------------------------------------===//

TEST(ChromeTrace, RoundTripsSpansOnBothClockTracks) {
  obs::TraceRecorder Rec;
  {
    obs::ScopedSpan Span(&Rec, "eas", "invocation", [] { return 0.5; });
    Rec.instant("eas", "alpha-search", 0.6, "alpha=0.40");
  }
  Rec.completeSpan("minicl", "exec", obs::TraceRecorder::hostSeconds(),
                   1e-3);
  Rec.count("eas.invocations");

  std::string Json = renderChromeTrace(Rec.drain());
  ErrorOr<obs::ChromeTraceData> Parsed = obs::parseChromeTrace(Json);
  ASSERT_TRUE(Parsed.ok()) << Parsed.status().toString();

  // Span begin/end appear on the host track (pid 1) and again on the
  // virtual track (pid 2) because the span carries virtual timestamps.
  EXPECT_EQ(Parsed->countPhase("B"), 2u);
  EXPECT_EQ(Parsed->countPhase("E"), 2u);
  EXPECT_EQ(Parsed->countPhase("X"), 1u);
  EXPECT_EQ(Parsed->countPhase("i"), 2u); // host + virtual instants
  EXPECT_EQ(Parsed->countPhase("C"), 1u);
  EXPECT_TRUE(Parsed->hasEventNamed("invocation"));
  EXPECT_TRUE(Parsed->hasEventNamed("alpha-search"));
  EXPECT_TRUE(Parsed->hasEventNamed("exec"));
  bool SawHostPid = false, SawVirtualPid = false;
  for (const obs::ChromeTraceEvent &E : Parsed->Events) {
    SawHostPid = SawHostPid || E.Pid == 1;
    SawVirtualPid = SawVirtualPid || E.Pid == 2;
  }
  EXPECT_TRUE(SawHostPid);
  EXPECT_TRUE(SawVirtualPid);
}

TEST(ChromeTrace, EscapesHostileDetailPayloads) {
  obs::TraceRecorder Rec;
  Rec.instant("t", "hostile", std::numeric_limits<double>::quiet_NaN(),
              std::string("quote=\" backslash=\\ newline=\n tab=\t "
                          "ctrl=\x01 end"));
  std::string Json = renderChromeTrace(Rec.drain());
  ErrorOr<obs::ChromeTraceData> Parsed = obs::parseChromeTrace(Json);
  ASSERT_TRUE(Parsed.ok()) << Parsed.status().toString();
  EXPECT_TRUE(Parsed->hasEventNamed("hostile"));
}

TEST(ChromeTrace, ParserRejectsMalformedDocuments) {
  EXPECT_FALSE(obs::parseChromeTrace("").ok());
  EXPECT_FALSE(obs::parseChromeTrace("{").ok());
  EXPECT_FALSE(obs::parseChromeTrace("[{]").ok());
  // Trailing garbage after a well-formed document.
  EXPECT_FALSE(obs::parseChromeTrace("[] trailing").ok());
  // An event with no phase is not a trace event.
  EXPECT_FALSE(obs::parseChromeTrace("[{\"name\":\"x\"}]").ok());
  // Truncated mid-string: the escaping bug a round trip must catch.
  std::string Json = renderChromeTrace(obs::TraceLog());
  EXPECT_TRUE(obs::parseChromeTrace(Json).ok());
  EXPECT_FALSE(
      obs::parseChromeTrace(Json.substr(0, Json.size() / 2)).ok());
}

//===----------------------------------------------------------------------===//
// Runtime and MiniCl instrumentation
//===----------------------------------------------------------------------===//

TEST(ObsRuntime, MiniClPublishesLifecycleSpans) {
  obs::TraceRecorder Rec;
  cl::MiniContext Ctx(2);
  Ctx.setTrace(&Rec);

  std::atomic<uint64_t> Touched{0};
  cl::MiniKernel Kernel("obs-kernel", [&Touched](uint64_t B, uint64_t E) {
    Touched += E - B;
  });
  Ctx.gpuQueue().enqueue(Kernel, 0, 1024).wait();
  Ctx.pool().parallelFor(0, 4096, 64, [&Touched](uint64_t B, uint64_t E) {
    Touched += E - B;
  });
  Ctx.setTrace(nullptr);

  EXPECT_EQ(Touched.load(), 1024u + 4096u);
  obs::TraceLog Log = Rec.drain();
  EXPECT_GE(Log.countNamed("queue-wait"), 1u);
  EXPECT_GE(Log.countNamed("exec"), 1u);
  EXPECT_GE(Log.countNamed("parallel-for"), 1u);
  EXPECT_GE(Log.counterTotal("minicl.commands"), 1.0);
  EXPECT_DOUBLE_EQ(Log.counterTotal("pool.iterations"), 4096.0);
}

//===----------------------------------------------------------------------===//
// EasConfig::validate
//===----------------------------------------------------------------------===//

TEST(EasConfigValidate, DefaultConfigIsValid) {
  EXPECT_TRUE(EasConfig().validate().ok());
}

TEST(EasConfigValidate, RejectsEachBadTunable) {
  auto Expect = [](EasConfig Config, const char *Label) {
    Status S = Config.validate();
    EXPECT_FALSE(S.ok()) << Label;
    EXPECT_EQ(S.code(), ErrCode::InvalidArgument) << Label;
  };
  EasConfig C;
  C.AlphaStep = 0.0;
  Expect(C, "zero alpha step");
  C = EasConfig();
  C.AlphaStep = 1.5;
  Expect(C, "alpha step above 1");
  C = EasConfig();
  C.AlphaStep = -0.1;
  Expect(C, "negative alpha step");
  C = EasConfig();
  C.ProfileFraction = 0.0;
  Expect(C, "zero profile fraction");
  C = EasConfig();
  C.ProfileFraction = 1.1;
  Expect(C, "profile fraction above 1");
  C = EasConfig();
  C.MinProfileIters = -1.0;
  Expect(C, "negative min profile iters");
  C = EasConfig();
  C.GpuProfileSize = -64.0;
  Expect(C, "negative profile size");
  C = EasConfig();
  C.Health.MaxLaunchRetries = 0;
  Expect(C, "zero launch-retry budget");
  C = EasConfig();
  C.Health.WatchdogPollSec = 0.0;
  Expect(C, "zero watchdog poll");
  C = EasConfig();
  C.Health.InitialQuarantineSec = -0.5;
  Expect(C, "negative quarantine");
  C = EasConfig();
  C.Health.QuarantineBackoffMultiplier = 0.5;
  Expect(C, "shrinking quarantine backoff");
  C = EasConfig();
  C.Health.RetryBackoffMultiplier = 0.5;
  Expect(C, "shrinking retry backoff");
}

//===----------------------------------------------------------------------===//
// SchemeKind and the unified run() API
//===----------------------------------------------------------------------===//

TEST(SchemeKind, NamesAreStable) {
  EXPECT_STREQ(schemeKindName(SchemeKind::FixedAlpha), "fixed");
  EXPECT_STREQ(schemeKindName(SchemeKind::CpuOnly), "cpu");
  EXPECT_STREQ(schemeKindName(SchemeKind::GpuOnly), "gpu");
  EXPECT_STREQ(schemeKindName(SchemeKind::Oracle), "oracle");
  EXPECT_STREQ(schemeKindName(SchemeKind::Perf), "perf");
  EXPECT_STREQ(schemeKindName(SchemeKind::Eas), "eas");
}

TEST(UnifiedRun, LegacyWrappersMatchRunForEveryScheme) {
  ExecutionSession Session(haswellDesktop());
  InvocationTrace Trace = shortTrace(10);
  Metric Objective = Metric::edp();

  RunOptions Options;
  Options.Trace = &Trace;
  Options.Objective = Objective;
  Options.Alpha = 0.3;
  Options.Step = 0.5;
  Options.Curves = &desktopCurves();

  struct Case {
    SchemeKind Kind;
    SessionReport Legacy;
  };
  std::vector<Case> Cases;
  Cases.push_back({SchemeKind::FixedAlpha,
                   Session.runFixedAlpha(Trace, 0.3, Objective)});
  Cases.push_back({SchemeKind::CpuOnly, Session.runCpuOnly(Trace, Objective)});
  Cases.push_back({SchemeKind::GpuOnly, Session.runGpuOnly(Trace, Objective)});
  Cases.push_back(
      {SchemeKind::Oracle, Session.runOracle(Trace, Objective, 0.5)});
  Cases.push_back({SchemeKind::Perf, Session.runPerf(Trace, Objective, 0.5)});
  Cases.push_back(
      {SchemeKind::Eas, Session.runEas(Trace, desktopCurves(), Objective)});

  for (const Case &C : Cases) {
    SessionReport Unified = Session.run(C.Kind, Options);
    expectSameMeasurement(C.Legacy, Unified);
    EXPECT_EQ(C.Legacy.Kind, C.Kind);
    EXPECT_EQ(Unified.Kind, C.Kind);
    EXPECT_EQ(Unified.Scheme, schemeKindName(C.Kind));
    EXPECT_EQ(C.Legacy.Scheme, Unified.Scheme);
  }
}

TEST(UnifiedRun, NullRecorderIsBitIdentical) {
  // The regression the whole design hangs on: attaching no recorder must
  // reproduce the pre-observability numbers exactly, and attaching one
  // must not change a single scheduling decision.
  ExecutionSession Session(haswellDesktop());
  InvocationTrace Trace = shortTrace();
  RunOptions Options;
  Options.Trace = &Trace;
  Options.Curves = &desktopCurves();

  SessionReport Bare = Session.run(SchemeKind::Eas, Options);
  EXPECT_EQ(Bare.TraceEventCount, 0u);

  obs::TraceRecorder Recorder;
  Options.Recorder = &Recorder;
  SessionReport Observed = Session.run(SchemeKind::Eas, Options);

  expectSameMeasurement(Bare, Observed);
  EXPECT_EQ(Bare.ProfileRepetitions, Observed.ProfileRepetitions);
  EXPECT_EQ(Bare.AlphaSearches, Observed.AlphaSearches);
  EXPECT_EQ(Bare.CpuOnlyFastPaths, Observed.CpuOnlyFastPaths);
  EXPECT_GT(Observed.TraceEventCount, 0u);
}

//===----------------------------------------------------------------------===//
// Golden path: a traced EAS run
//===----------------------------------------------------------------------===//

TEST(GoldenPath, TracedEasRunEmitsTheSchedulingStory) {
  ExecutionSession Session(haswellDesktop());
  InvocationTrace Trace = shortTrace();
  obs::TraceRecorder Recorder;
  RunOptions Options;
  Options.Trace = &Trace;
  Options.Curves = &desktopCurves();
  Options.Recorder = &Recorder;
  SessionReport Report = Session.run(SchemeKind::Eas, Options);

  obs::TraceLog Log = Recorder.drain();
  // The spans and instants the issue's golden path names.
  EXPECT_GE(Log.countNamed("session"), 2u); // begin + end
  EXPECT_GE(Log.countNamed("invocation"), 2u);
  EXPECT_GE(Log.countNamed("profile"), 2u);
  EXPECT_GE(Log.countNamed("profile-rep"), 1u);
  EXPECT_GE(Log.countNamed("dispatch"), 2u);
  EXPECT_GE(Log.countNamed("classify"), 1u);
  EXPECT_GE(Log.countNamed("alpha-search"), 1u);
  EXPECT_GE(Log.countNamed("drain"), 2u); // shutdown drain span

  // Counter totals must agree with the report's aggregates.
  EXPECT_DOUBLE_EQ(Log.counterTotal("eas.invocations"),
                   double(Report.Invocations));
  EXPECT_DOUBLE_EQ(Log.counterTotal("eas.profile_reps"),
                   double(Report.ProfileRepetitions));
  EXPECT_DOUBLE_EQ(Log.counterTotal("eas.alpha_searches"),
                   double(Report.AlphaSearches));
  EXPECT_DOUBLE_EQ(Log.counterTotal("eas.cpu_only"),
                   double(Report.CpuOnlyFastPaths));
  EXPECT_GT(Report.AlphaSearches, 0u);
  EXPECT_GT(Report.ProfileRepetitions, 0u);

  // The alpha-search instant carries the evaluated grid.
  bool SawGrid = false;
  for (const obs::TraceEvent &E : Log.Events)
    if (std::string(E.Name) == "alpha-search")
      SawGrid = SawGrid || E.Detail.find("grid=") != std::string::npos;
  EXPECT_TRUE(SawGrid);

  // And the whole log must survive a Chrome-trace round trip.
  std::string Json = renderChromeTrace(Log);
  ErrorOr<obs::ChromeTraceData> Parsed = obs::parseChromeTrace(Json);
  ASSERT_TRUE(Parsed.ok()) << Parsed.status().toString();
  EXPECT_TRUE(Parsed->hasEventNamed("session"));
  EXPECT_TRUE(Parsed->hasEventNamed("profile"));
  EXPECT_TRUE(Parsed->hasEventNamed("alpha-search"));
  EXPECT_TRUE(Parsed->hasEventNamed("dispatch"));
  EXPECT_GT(Parsed->countPhase("C"), 0u);
}

TEST(GoldenPath, QuarantineArcShowsUpInTheTrace) {
  ExecutionSession Session(faultySpec("gpu-hang"));
  InvocationTrace Trace = shortTrace(60);
  obs::TraceRecorder Recorder;
  RunOptions Options;
  Options.Trace = &Trace;
  Options.Curves = &desktopCurves();
  Options.Recorder = &Recorder;
  SessionReport Report = Session.run(SchemeKind::Eas, Options);

  obs::TraceLog Log = Recorder.drain();
  // Health-state transitions: hang -> quarantine -> probe -> recovery.
  EXPECT_GE(Log.countNamed("hang"), 1u);
  EXPECT_GE(Log.countNamed("quarantine"), 1u);
  EXPECT_GE(Log.countNamed("recovery"), 1u);
  // The quarantined-run counter fires on the pre-dispatch quarantine
  // path; a mid-dispatch quarantine also marks the invocation, so the
  // counter is a lower bound on the report's tally.
  EXPECT_GE(Log.counterTotal("eas.quarantined_runs"), 1.0);
  EXPECT_LE(Log.counterTotal("eas.quarantined_runs"),
            double(Report.Resilience.QuarantinedInvocations));
  EXPECT_GE(Log.counterTotal("eas.hangs"), 1.0);
  EXPECT_GE(Log.counterTotal("eas.cpu_only"), 1.0);
  EXPECT_TRUE(Report.Resilience.degraded());

  std::string Json = renderChromeTrace(Log);
  ErrorOr<obs::ChromeTraceData> Parsed = obs::parseChromeTrace(Json);
  ASSERT_TRUE(Parsed.ok()) << Parsed.status().toString();
  EXPECT_TRUE(Parsed->hasEventNamed("quarantine"));
}
