//===-- tests/CoreTest.cpp - core/ unit tests ------------------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/AlphaSearch.h"
#include "ecas/core/EasScheduler.h"
#include "ecas/core/ExecutionSession.h"
#include "ecas/core/KernelHistory.h"
#include "ecas/core/Metric.h"
#include "ecas/core/OperatingPoint.h"
#include "ecas/core/TimeModel.h"
#include "ecas/hw/Presets.h"
#include "ecas/power/Characterizer.h"
#include "ecas/power/MicroBenchmarks.h"
#include "ecas/support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ecas;

TEST(Metric, StandardMetrics) {
  EXPECT_DOUBLE_EQ(Metric::energy().evaluate(10.0, 2.0), 20.0);
  EXPECT_DOUBLE_EQ(Metric::edp().evaluate(10.0, 2.0), 40.0);
  EXPECT_DOUBLE_EQ(Metric::ed2p().evaluate(10.0, 2.0), 80.0);
  EXPECT_EQ(Metric::edp().name(), "edp");
}

TEST(Metric, CustomAndFromMeasurement) {
  Metric Sqrt = Metric::custom("sqrtE", [](double W, double T) {
    return std::sqrt(W * T);
  });
  EXPECT_DOUBLE_EQ(Sqrt.evaluate(4.0, 1.0), 2.0);
  // fromMeasurement: E=20 J over 2 s -> P=10 W.
  EXPECT_DOUBLE_EQ(Metric::edp().fromMeasurement(20.0, 2.0), 40.0);
}

TEST(TimeModel, AlphaPerfBalancesDevices) {
  TimeModel Model(100.0, 300.0);
  EXPECT_DOUBLE_EQ(Model.alphaPerf(), 0.75);
  // At alpha_PERF both sides finish together; no tail.
  double N = 1000.0;
  EXPECT_NEAR(Model.remainingIters(N, 0.75), 0.0, 1e-9);
  EXPECT_NEAR(Model.totalTime(N, 0.75), N / 400.0, 1e-12);
}

TEST(TimeModel, ExtremesMatchSingleDevice) {
  TimeModel Model(100.0, 300.0);
  double N = 1200.0;
  EXPECT_NEAR(Model.totalTime(N, 0.0), N / 100.0, 1e-9);
  EXPECT_NEAR(Model.totalTime(N, 1.0), N / 300.0, 1e-9);
}

TEST(TimeModel, Equation4TailSelection) {
  TimeModel Model(100.0, 300.0);
  double N = 1000.0;
  // Below alpha_PERF the CPU has the tail.
  double Alpha = 0.5;
  double Tcg = Model.combinedTime(N, Alpha); // GPU side: 500/300 = 1.667
  EXPECT_NEAR(Tcg, 500.0 / 300.0, 1e-9);
  double Nrem = Model.remainingIters(N, Alpha);
  EXPECT_NEAR(Nrem, N - Tcg * 400.0, 1e-9);
  EXPECT_NEAR(Model.totalTime(N, Alpha), Tcg + Nrem / 100.0, 1e-9);
  // Above alpha_PERF the GPU has the tail.
  Alpha = 0.9;
  Tcg = Model.combinedTime(N, Alpha); // CPU side: 100/100 = 1.0
  EXPECT_NEAR(Tcg, 1.0, 1e-9);
  Nrem = Model.remainingIters(N, Alpha);
  EXPECT_NEAR(Model.totalTime(N, Alpha), Tcg + Nrem / 300.0, 1e-9);
}

TEST(TimeModel, PerfAlphaMinimizesTotalTime) {
  TimeModel Model(120.0, 280.0);
  double N = 5000.0;
  double Best = Model.totalTime(N, Model.alphaPerf());
  for (double Alpha = 0.0; Alpha <= 1.0 + 1e-9; Alpha += 0.01)
    EXPECT_GE(Model.totalTime(N, std::min(Alpha, 1.0)), Best - 1e-9);
}

TEST(TimeModel, ZeroGpuRateForcesCpu) {
  TimeModel Model(100.0, 0.0);
  EXPECT_DOUBLE_EQ(Model.alphaPerf(), 0.0);
  EXPECT_NEAR(Model.totalTime(1000.0, 0.0), 10.0, 1e-9);
}

TEST(AlphaSearch, FlatPowerPicksPerfForEdp) {
  // With constant power, minimizing EDP = P*T^2 is minimizing time.
  TimeModel Model(100.0, 300.0);
  PowerCurve Flat;
  Flat.Poly = Polynomial({50.0});
  AlphaChoice Choice = chooseAlpha(Model, Flat, Metric::edp(), 1000.0);
  EXPECT_NEAR(Choice.Alpha, 0.8, 0.051); // Grid point nearest 0.75.
  EXPECT_EQ(Choice.Evaluations, 11u);
}

TEST(AlphaSearch, CheapGpuPullsEnergyTowardOne) {
  TimeModel Model(100.0, 300.0);
  // Power falls steeply with offload: GPU much more efficient.
  PowerCurve Falling;
  Falling.Poly = Polynomial({60.0, -35.0});
  AlphaChoice Choice = chooseAlpha(Model, Falling, Metric::energy(), 1000.0);
  EXPECT_GE(Choice.Alpha, 0.9);
}

TEST(AlphaSearch, RefinementImprovesObjective) {
  TimeModel Model(100.0, 310.0);
  PowerCurve Curve;
  Curve.Poly = Polynomial({55.0, -10.0, 8.0});
  AlphaSearchConfig Coarse;
  AlphaSearchConfig Fine;
  Fine.Refine = true;
  AlphaChoice A = chooseAlpha(Model, Curve, Metric::edp(), 1e6, Coarse);
  AlphaChoice B = chooseAlpha(Model, Curve, Metric::edp(), 1e6, Fine);
  EXPECT_LE(B.PredictedMetric, A.PredictedMetric + 1e-12);
}

TEST(OperatingPoint, LegacyWrapperIsBitIdentical) {
  // chooseAlpha is frozen as a delegating wrapper; every field of its
  // result must equal the single-view joint search bit for bit.
  TimeModel Model(100.0, 310.0);
  PowerCurve Curve;
  Curve.Poly = Polynomial({55.0, -10.0, 8.0});
  for (bool Refine : {false, true}) {
    AlphaSearchConfig Legacy;
    Legacy.Step = 0.05;
    Legacy.Refine = Refine;
    AlphaChoice Old = chooseAlpha(Model, Curve, Metric::edp(), 1e6, Legacy);

    PStateView View;
    View.Curve = &Curve;
    OperatingPointSearchConfig Joint;
    Joint.Step = 0.05;
    Joint.Refine = Refine;
    Decision New =
        chooseOperatingPoint(Model, &View, 1, Metric::edp(), 1e6, Joint);
    EXPECT_EQ(Old.Alpha, New.Point.Alpha);
    EXPECT_EQ(Old.PredictedMetric, New.PredictedMetric);
    EXPECT_EQ(Old.PredictedSeconds, New.PredictedSeconds);
    EXPECT_EQ(Old.PredictedWatts, New.PredictedWatts);
    EXPECT_EQ(Old.Evaluations, New.Evaluations);
    EXPECT_EQ(New.Point.PState, 0u);
  }
}

TEST(OperatingPoint, CubicPowerMakesInteriorStateWin) {
  // Power falls roughly cubically with the clock while the rate falls
  // at most linearly, so for an energy objective some reduced state
  // beats full speed — the interior optimum motivating the DVFS axis.
  TimeModel Model(1e8, 3e8);
  PowerCurve Curves[3];
  PStateView Views[3];
  const double Scales[3] = {1.0, 0.8, 0.6};
  for (unsigned S = 0; S != 3; ++S) {
    double F = Scales[S];
    Curves[S].Poly = Polynomial({10.0 + 50.0 * F * F * F});
    Views[S].Curve = &Curves[S];
    Views[S].CpuFreqScale = F;
    Views[S].GpuFreqScale = F;
  }
  OperatingPointSearchConfig Config;
  Config.MemBoundFraction = 0.5; // time degrades sublinearly
  Decision Choice =
      chooseOperatingPoint(Model, Views, 3, Metric::energy(), 1e7, Config);
  EXPECT_GT(Choice.Point.PState, 0u);

  // Whatever the memory-boundness, the joint search can never lose to
  // the fixed full-speed search on the same model — state 0 is always
  // one of its candidates (the frontier-bench invariant).
  Config.MemBoundFraction = 0.0;
  Decision Joint =
      chooseOperatingPoint(Model, Views, 3, Metric::energy(), 1e7, Config);
  Decision Fixed =
      chooseOperatingPoint(Model, Views, 1, Metric::energy(), 1e7, Config);
  EXPECT_LE(Joint.PredictedMetric, Fixed.PredictedMetric + 1e-12);
}

TEST(OperatingPoint, RaceToIdleDiscountsTheIdleFloor) {
  // The idle floor is paid whether the kernel runs or not, so race-to-
  // idle scores (P - P_idle) * T. A state wins only by cutting the
  // above-floor increment faster than it stretches the run — here the
  // floor hides 40 W, so halving the clock cuts active power 4x for 2x
  // time, flipping the decision plain energy makes.
  TimeModel Model(1e8, 3e8);
  PowerCurve Curves[2];
  PStateView Views[2];
  const double Scales[2] = {1.0, 0.5};
  for (unsigned S = 0; S != 2; ++S) {
    double F = Scales[S];
    Curves[S].Poly = Polynomial({40.0 + 20.0 * F * F * F});
    Views[S].Curve = &Curves[S];
    Views[S].CpuFreqScale = F;
    Views[S].GpuFreqScale = F;
  }
  OperatingPointSearchConfig Config;
  Decision Plain =
      chooseOperatingPoint(Model, Views, 2, Metric::energy(), 1e7, Config);
  EXPECT_EQ(Plain.Point.PState, 0u); // 17.5 W saved is not worth 2x time

  Config.Policy = SchedulingPolicy::RaceToIdle;
  Config.IdleWatts = 40.0;
  Decision Raced =
      chooseOperatingPoint(Model, Views, 2, Metric::energy(), 1e7, Config);
  EXPECT_EQ(Raced.Point.PState, 1u);
  // Predicted consequences stay physical: true watts, not floor-relative.
  EXPECT_NEAR(Raced.PredictedWatts, Curves[1].powerAt(Raced.Point.Alpha),
              1e-12);

  // A mischaracterized floor above every P(alpha) clamps the active
  // power to a positive epsilon: the objective degenerates to time and
  // the search must race at full speed instead of inverting the order.
  Config.IdleWatts = 1000.0;
  Decision Clamped =
      chooseOperatingPoint(Model, Views, 2, Metric::energy(), 1e7, Config);
  EXPECT_EQ(Clamped.Point.PState, 0u);
}

TEST(OperatingPoint, PaceToDeadlineMinimizesEnergyAmongFeasible) {
  TimeModel Model(1e8, 3e8);
  PowerCurve Curves[2];
  PStateView Views[2];
  const double Scales[2] = {1.0, 0.5};
  for (unsigned S = 0; S != 2; ++S) {
    double F = Scales[S];
    Curves[S].Poly = Polynomial({10.0 + 50.0 * F * F * F});
    Views[S].Curve = &Curves[S];
    Views[S].CpuFreqScale = F;
    Views[S].GpuFreqScale = F;
  }
  OperatingPointSearchConfig Config;
  Config.MemBoundFraction = 0.3;
  Config.Policy = SchedulingPolicy::PaceToDeadline;

  // Loose deadline: everything is feasible, take the cheapest joules.
  Config.DeadlineSeconds = 10.0;
  Decision Loose =
      chooseOperatingPoint(Model, Views, 2, Metric::energy(), 1e7, Config);
  EXPECT_EQ(Loose.Point.PState, 1u);

  // Tight deadline: only full speed makes it; energy preference yields.
  Metric Perf = Metric::custom("time", [](double, double T) { return T; });
  Decision Fast = chooseOperatingPoint(Model, Views, 1, Perf, 1e7);
  Config.DeadlineSeconds = Fast.PredictedSeconds * 1.05;
  Decision Tight =
      chooseOperatingPoint(Model, Views, 2, Metric::energy(), 1e7, Config);
  EXPECT_EQ(Tight.Point.PState, 0u);
  EXPECT_LE(Tight.PredictedSeconds, Config.DeadlineSeconds);

  // Impossible deadline: no point is feasible; pick the least-late one
  // rather than failing, so the scheduler still returns a valid cell.
  Config.DeadlineSeconds = Fast.PredictedSeconds * 0.01;
  Decision Late =
      chooseOperatingPoint(Model, Views, 2, Metric::energy(), 1e7, Config);
  EXPECT_EQ(Late.Point.PState, 0u);
}

TEST(OperatingPoint, PolicyNamesRoundTrip) {
  for (SchedulingPolicy Policy :
       {SchedulingPolicy::MinimizeMetric, SchedulingPolicy::RaceToIdle,
        SchedulingPolicy::PaceToDeadline}) {
    auto Back = schedulingPolicyByName(schedulingPolicyName(Policy));
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, Policy);
  }
  EXPECT_FALSE(schedulingPolicyByName("overclock-to-eleven").has_value());
}

TEST(TimeModel, ScaledToAmdahlEndpoints) {
  TimeModel Model(1e8, 3e8);
  // beta = 0: fully compute-bound, rates scale linearly with the clock.
  TimeModel Linear = Model.scaledTo(0.5, 0.25, 0.0);
  EXPECT_DOUBLE_EQ(Linear.cpuRate(), 0.5e8);
  EXPECT_DOUBLE_EQ(Linear.gpuRate(), 0.75e8);
  // beta = 1: fully memory-bound, the clock is irrelevant.
  TimeModel Pinned = Model.scaledTo(0.5, 0.25, 1.0);
  EXPECT_DOUBLE_EQ(Pinned.cpuRate(), Model.cpuRate());
  EXPECT_DOUBLE_EQ(Pinned.gpuRate(), Model.gpuRate());
  // Interior beta lands strictly between the endpoints.
  TimeModel Mixed = Model.scaledTo(0.5, 0.5, 0.5);
  EXPECT_GT(Mixed.cpuRate(), Linear.cpuRate());
  EXPECT_LT(Mixed.cpuRate(), Model.cpuRate());
}

TEST(KernelHistory, LookupAndUpdate) {
  KernelHistory History;
  EXPECT_FALSE(History.find(42).has_value());
  History.update(42, [](KernelRecord &Record) {
    Record.Alpha.addSample(0.5, 10.0);
  });
  std::optional<KernelRecord> Found = History.find(42);
  ASSERT_TRUE(Found.has_value());
  EXPECT_NEAR(Found->Alpha.value(), 0.5, 1e-12);
  EXPECT_EQ(History.size(), 1u);
  History.clear();
  EXPECT_FALSE(History.find(42).has_value());
}

namespace {

/// Shared fixture: characterize each platform once (expensive) and hand
/// the curves to every scheduler test.
const PowerCurveSet &desktopCurves() {
  static PowerCurveSet Curves =
      Characterizer(haswellDesktop()).characterize();
  return Curves;
}

} // namespace

TEST(EasScheduler, SmallInvocationsRunCpuOnly) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  EasScheduler Scheduler(desktopCurves(), Metric::edp());
  KernelDesc Kernel = computeBoundMicroKernel();
  auto Outcome = Scheduler.execute(Proc, Kernel, 100.0);
  EXPECT_TRUE(Outcome.CpuOnlyFastPath);
  EXPECT_DOUBLE_EQ(Outcome.AlphaUsed, 0.0);
  EXPECT_FALSE(Outcome.Profiled);
}

TEST(EasScheduler, FirstLargeInvocationProfiles) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  EasScheduler Scheduler(desktopCurves(), Metric::edp());
  KernelDesc Kernel = computeBoundMicroKernel();
  auto First = Scheduler.execute(Proc, Kernel, 2e6);
  EXPECT_TRUE(First.Profiled);
  EXPECT_GT(First.ProfileRepetitions, 0u);
  // Second invocation reuses the table-G alpha without profiling.
  auto Second = Scheduler.execute(Proc, Kernel, 2e6);
  EXPECT_FALSE(Second.Profiled);
  EXPECT_EQ(Second.ProfileRepetitions, 0u);
  EXPECT_NEAR(Second.AlphaUsed, First.AlphaUsed, 0.2);
}

TEST(EasScheduler, TinyFirstInvocationDoesNotPinKernel) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  EasScheduler Scheduler(desktopCurves(), Metric::edp());
  KernelDesc Kernel = computeBoundMicroKernel();
  auto Tiny = Scheduler.execute(Proc, Kernel, 64.0);
  EXPECT_TRUE(Tiny.CpuOnlyFastPath);
  auto Large = Scheduler.execute(Proc, Kernel, 2e6);
  EXPECT_TRUE(Large.Profiled);
}

TEST(EasScheduler, GpuBiasedKernelGoesToGpu) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  EasScheduler Scheduler(desktopCurves(), Metric::energy());
  // Strongly GPU-biased compute kernel: EAS should offload nearly all.
  KernelDesc Kernel = computeBoundMicroKernel();
  Kernel.CpuCyclesPerIter *= 20.0;
  Kernel.CpuVectorizable = 0.0;
  Kernel.Name = "test.gpu_biased";
  Kernel.Id = 0;
  Kernel.withAutoId();
  auto Outcome = Scheduler.execute(Proc, Kernel, 5e6);
  EXPECT_GE(Outcome.AlphaUsed, 0.8);
}

TEST(EasScheduler, CpuBiasedKernelStaysOnCpu) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  EasScheduler Scheduler(desktopCurves(), Metric::energy());
  // FD-like: divergence destroys the GPU.
  KernelDesc Kernel = computeBoundMicroKernel();
  Kernel.GpuEfficiency = 0.02;
  Kernel.Name = "test.cpu_biased";
  Kernel.Id = 0;
  Kernel.withAutoId();
  auto Outcome = Scheduler.execute(Proc, Kernel, 5e6);
  EXPECT_LE(Outcome.AlphaUsed, 0.2);
}

TEST(ExecutionSession, FixedAlphaExtremesDiffer) {
  PlatformSpec Spec = haswellDesktop();
  ExecutionSession Session(Spec);
  KernelDesc Kernel = computeBoundMicroKernel();
  InvocationTrace Trace{{Kernel, 5e6}};
  SessionReport Cpu = Session.runCpuOnly(Trace, Metric::energy());
  SessionReport Gpu = Session.runGpuOnly(Trace, Metric::energy());
  EXPECT_GT(Cpu.Seconds, 0.0);
  EXPECT_GT(Gpu.Seconds, 0.0);
  // Desktop: the GPU is faster and cheaper on regular compute.
  EXPECT_LT(Gpu.Seconds, Cpu.Seconds);
  EXPECT_LT(Gpu.Joules, Cpu.Joules);
  EXPECT_EQ(Cpu.Scheme, "cpu");
  EXPECT_EQ(Gpu.Scheme, "gpu");
}

TEST(ExecutionSession, OracleBeatsOrMatchesEveryFixedAlpha) {
  PlatformSpec Spec = haswellDesktop();
  ExecutionSession Session(Spec);
  KernelDesc Kernel = memoryBoundMicroKernel();
  InvocationTrace Trace{{Kernel, 2e6}, {Kernel, 2e6}};
  Metric Objective = Metric::edp();
  SessionReport Oracle = Session.runOracle(Trace, Objective);
  for (double Alpha : {0.0, 0.3, 0.5, 0.7, 1.0}) {
    SessionReport Fixed = Session.runFixedAlpha(Trace, Alpha, Objective);
    EXPECT_LE(Oracle.MetricValue, Fixed.MetricValue + 1e-9);
  }
}

TEST(ExecutionSession, PerfMinimizesTimeNotEnergy) {
  PlatformSpec Spec = haswellDesktop();
  ExecutionSession Session(Spec);
  KernelDesc Kernel = computeBoundMicroKernel();
  InvocationTrace Trace{{Kernel, 1e7}};
  Metric Objective = Metric::energy();
  SessionReport Perf = Session.runPerf(Trace, Objective);
  for (double Alpha : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    SessionReport Fixed = Session.runFixedAlpha(Trace, Alpha, Objective);
    EXPECT_LE(Perf.Seconds, Fixed.Seconds + 1e-9);
  }
}

TEST(ExecutionSession, EasApproachesOracleOnEdp) {
  PlatformSpec Spec = haswellDesktop();
  ExecutionSession Session(Spec);
  KernelDesc Kernel = computeBoundMicroKernel();
  InvocationTrace Trace;
  for (int I = 0; I != 8; ++I)
    Trace.push_back({Kernel, 2e6});
  Metric Objective = Metric::edp();
  SessionReport Oracle = Session.runOracle(Trace, Objective);
  SessionReport Eas = Session.runEas(Trace, desktopCurves(), Objective);
  ASSERT_GT(Eas.MetricValue, 0.0);
  double Efficiency = Oracle.MetricValue / Eas.MetricValue;
  EXPECT_GT(Efficiency, 0.75) << "EAS EDP efficiency too far from Oracle";
  EXPECT_TRUE(Eas.WasClassified);
}

TEST(EasScheduler, ExternalGpuBusyForcesCpuAlone) {
  // Section 5: "we test GPU performance counter A26 ... to check if it
  // is busy. In that case, we execute the application entirely on the
  // CPU."
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  EasScheduler Scheduler(desktopCurves(), Metric::edp());
  Scheduler.setExternalGpuBusy(true);
  KernelDesc Kernel = computeBoundMicroKernel();
  auto Outcome = Scheduler.execute(Proc, Kernel, 2e6);
  EXPECT_TRUE(Outcome.CpuOnlyFastPath);
  EXPECT_DOUBLE_EQ(Outcome.AlphaUsed, 0.0);
  EXPECT_FALSE(Outcome.Profiled);
  // Nothing was learned while the GPU belonged to someone else.
  EXPECT_FALSE(Scheduler.history().find(Kernel.Id).has_value());

  // Once the GPU frees up, the kernel profiles normally.
  Scheduler.setExternalGpuBusy(false);
  auto Fresh = Scheduler.execute(Proc, Kernel, 2e6);
  EXPECT_TRUE(Fresh.Profiled);
}

TEST(EasScheduler, PeriodicReprofilingTracksDriftingKernels) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  EasConfig Config;
  Config.ReprofileEveryInvocations = 4;
  EasScheduler Scheduler(desktopCurves(), Metric::edp(), Config);
  KernelDesc Kernel = computeBoundMicroKernel();
  unsigned Profiles = 0;
  for (int I = 0; I != 12; ++I) {
    auto Outcome = Scheduler.execute(Proc, Kernel, 2e6);
    if (Outcome.Profiled)
      ++Profiles;
  }
  // Invocation 0 profiles, then every 4th invocation re-profiles.
  EXPECT_GE(Profiles, 3u);
  EXPECT_LE(Profiles, 4u);
}

TEST(EasScheduler, NoReprofilingByDefault) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  EasScheduler Scheduler(desktopCurves(), Metric::edp());
  KernelDesc Kernel = computeBoundMicroKernel();
  unsigned Profiles = 0;
  for (int I = 0; I != 8; ++I)
    if (Scheduler.execute(Proc, Kernel, 2e6).Profiled)
      ++Profiles;
  EXPECT_EQ(Profiles, 1u);
}

/// Property sweep: for random throughput pairs, the analytical time
/// model obeys its invariants on the whole alpha range.
class TimeModelProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(TimeModelProperty, InvariantsHoldAcrossAlpha) {
  Xoshiro256 Rng(2024 + GetParam());
  double Rc = Rng.nextDouble(1e4, 1e9);
  double Rg = Rng.nextDouble(1e4, 1e9);
  double N = Rng.nextDouble(1e3, 1e8);
  TimeModel Model(Rc, Rg);
  double Combined = N / (Rc + Rg);
  double Best = Model.totalTime(N, Model.alphaPerf());
  for (double Alpha = 0.0; Alpha <= 1.0 + 1e-9; Alpha += 0.05) {
    double A = std::min(Alpha, 1.0);
    double T = Model.totalTime(N, A);
    // No split beats the combined-throughput lower bound...
    EXPECT_GE(T, Combined * (1.0 - 1e-9));
    // ...and alpha_PERF is the global minimizer.
    EXPECT_GE(T, Best * (1.0 - 1e-9));
    // The single-device extremes bound everything.
    EXPECT_LE(T, std::max(N / Rc, N / Rg) * (1.0 + 1e-9));
    // Remaining iterations are consistent with the combined phase.
    double Nrem = Model.remainingIters(N, A);
    EXPECT_GE(Nrem, -1e-6);
    EXPECT_LE(Nrem, N * (1.0 + 1e-12));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRates, TimeModelProperty,
                         ::testing::Range(0u, 24u));

TEST(TimeModel, DegenerateRatesAreSanitizedNotPropagated) {
  TimeModel FromNan(std::nan(""), std::nan(""));
  EXPECT_DOUBLE_EQ(FromNan.cpuRate(), 0.0);
  EXPECT_DOUBLE_EQ(FromNan.gpuRate(), 0.0);
  EXPECT_DOUBLE_EQ(FromNan.alphaPerf(), 0.0);
  // A dead model reports "effectively forever", never NaN, so alpha
  // objective comparisons stay well ordered.
  EXPECT_TRUE(std::isfinite(FromNan.totalTime(1e6, 0.5)));
  EXPECT_GE(FromNan.totalTime(1e6, 0.5), 1e29);

  TimeModel Negative(-5.0, 2.0);
  EXPECT_DOUBLE_EQ(Negative.cpuRate(), 0.0);
  EXPECT_DOUBLE_EQ(Negative.gpuRate(), 2.0);
  EXPECT_DOUBLE_EQ(Negative.alphaPerf(), 1.0);
}

TEST(AlphaSearch, DeadDevicesStillYieldAValidAlpha) {
  PowerCurve Curve;
  Curve.Poly = Polynomial({30.0});
  AlphaChoice Choice =
      chooseAlpha(TimeModel(0.0, 0.0), Curve, Metric::edp(), 1e6);
  EXPECT_GE(Choice.Alpha, 0.0);
  EXPECT_LE(Choice.Alpha, 1.0);
  EXPECT_TRUE(std::isfinite(Choice.PredictedMetric));

  // A NaN GPU probe (hung profiling run) must not poison the search:
  // every iteration lands on the device that still answers.
  Choice =
      chooseAlpha(TimeModel(1e8, std::nan("")), Curve, Metric::edp(), 1e6);
  EXPECT_DOUBLE_EQ(Choice.Alpha, 0.0);
}
