//===-- tests/FaultInjectionTest.cpp - end-to-end degradation -------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Integration coverage of the fault-injection tentpole: a GPU hang in
/// the middle of a trace must leave every comparison scheme running to
/// completion; EAS must quarantine the device, degrade to CPU-alone,
/// and re-admit it after recovery; and a platform with no fault plan
/// must behave bit-identically to the pre-fault-subsystem primitives.
///
//===----------------------------------------------------------------------===//

#include "ecas/core/EasScheduler.h"
#include "ecas/core/ExecutionSession.h"
#include "ecas/fault/FaultPlan.h"
#include "ecas/hw/Presets.h"
#include "ecas/power/Characterizer.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ecas;

namespace {

KernelDesc testKernel() {
  KernelDesc Kernel;
  Kernel.Name = "fault-probe";
  return Kernel.withAutoId();
}

/// A trace long enough (hundreds of virtual milliseconds) to straddle
/// the built-in gpu-hang scenario's fault window [0.02 s, 0.2 s) and the
/// quarantine backoffs that follow it.
InvocationTrace longTrace(unsigned Invocations = 60,
                          double Iterations = 2e6) {
  InvocationTrace Trace;
  for (unsigned I = 0; I != Invocations; ++I)
    Trace.push_back({testKernel(), Iterations});
  return Trace;
}

PlatformSpec faultySpec(const std::string &Scenario) {
  PlatformSpec Spec = haswellDesktop();
  ErrorOr<FaultPlan> Plan = FaultPlan::scenario(Scenario);
  EXPECT_TRUE(Plan.ok()) << Scenario;
  Spec.Faults = *Plan;
  return Spec;
}

const PowerCurveSet &desktopCurves() {
  // Characterization happens on the healthy platform, before deployment.
  static PowerCurveSet Curves = Characterizer(haswellDesktop()).characterize();
  return Curves;
}

void expectCompleted(const SessionReport &Report, unsigned Invocations) {
  EXPECT_TRUE(std::isfinite(Report.Seconds));
  EXPECT_GT(Report.Seconds, 0.0);
  EXPECT_TRUE(std::isfinite(Report.Joules));
  EXPECT_GT(Report.Joules, 0.0);
  EXPECT_EQ(Report.Invocations, Invocations);
}

} // namespace

TEST(FaultInjection, EverySchemeCompletesThroughMidTraceHang) {
  PlatformSpec Spec = faultySpec("gpu-hang");
  ExecutionSession Session(Spec);
  InvocationTrace Trace = longTrace();
  Metric Objective = Metric::edp();
  unsigned N = static_cast<unsigned>(Trace.size());

  expectCompleted(Session.runCpuOnly(Trace, Objective), N);

  SessionReport Gpu = Session.runGpuOnly(Trace, Objective);
  expectCompleted(Gpu, N);
  // A GPU-alone run cannot dodge the hang: the watchdog must have fired
  // and stranded work back to the CPU.
  EXPECT_TRUE(Gpu.FaultsEnabled);
  EXPECT_GE(Gpu.Resilience.HangsDetected, 1u);
  EXPECT_TRUE(Gpu.Resilience.degraded());
  // Stranding shows up as an effective offload ratio below the requested
  // alpha = 1.
  EXPECT_LT(Gpu.MeanAlpha, 1.0);

  expectCompleted(Session.runPerf(Trace, Objective, /*Step=*/0.5), N);
  expectCompleted(Session.runOracle(Trace, Objective, /*Step=*/0.5), N);

  SessionReport Eas = Session.runEas(Trace, desktopCurves(), Objective);
  expectCompleted(Eas, N);
  EXPECT_TRUE(Eas.FaultsEnabled);
  EXPECT_TRUE(Eas.Injected.anyInjected());
}

TEST(FaultInjection, EasQuarantinesDegradesAndReadmits) {
  PlatformSpec Spec = faultySpec("gpu-hang");
  ExecutionSession Session(Spec);
  SessionReport Report =
      Session.runEas(longTrace(), desktopCurves(), Metric::edp());

  // Cause side: the injector really fired hang queries.
  EXPECT_TRUE(Report.FaultsEnabled);
  EXPECT_GT(Report.Injected.HangQueries, 0u);

  // Reaction side: watchdog -> quarantine -> CPU-only invocations ->
  // re-probe -> recovery once the fault window closes.
  EXPECT_GE(Report.Resilience.HangsDetected, 1u);
  EXPECT_GE(Report.Resilience.Quarantines, 1u);
  EXPECT_GE(Report.Resilience.QuarantinedInvocations, 1u);
  EXPECT_GE(Report.Resilience.Recoveries, 1u);
  EXPECT_TRUE(Report.Resilience.degraded());

  // After re-admission the GPU is used again, so the run as a whole is
  // not CPU-only.
  EXPECT_GT(Report.MeanAlpha, 0.0);
}

TEST(FaultInjection, EasPerInvocationOutcomesShowTheFullArc) {
  PlatformSpec Spec = faultySpec("gpu-hang");
  SimProcessor Proc(Spec);
  EasScheduler Scheduler(desktopCurves(), Metric::edp());
  KernelDesc Kernel = testKernel();

  bool SawHang = false, SawQuarantined = false, SawReadmitted = false;
  bool SawGpuAfterReadmit = false;
  for (unsigned I = 0; I != 60; ++I) {
    EasScheduler::InvocationOutcome Outcome =
        Scheduler.execute(Proc, Kernel, 2e6);
    SawHang = SawHang || Outcome.HangDetected;
    SawQuarantined = SawQuarantined || Outcome.GpuQuarantined;
    SawReadmitted = SawReadmitted || Outcome.GpuReadmitted;
    if (SawReadmitted && Outcome.AlphaUsed > 0.0)
      SawGpuAfterReadmit = true;
  }
  EXPECT_TRUE(SawHang);
  EXPECT_TRUE(SawQuarantined);
  EXPECT_TRUE(SawReadmitted);
  EXPECT_TRUE(SawGpuAfterReadmit);
  EXPECT_GE(Scheduler.health().stats().Recoveries, 1u);

  // Quarantined runs were recorded in table G without polluting alpha.
  std::optional<KernelRecord> Record = Scheduler.history().find(Kernel.Id);
  ASSERT_TRUE(Record.has_value());
  EXPECT_GE(Record->QuarantinedRuns, 1u);
}

TEST(FaultInjection, FlakyLaunchesRetryAndFallBack) {
  PlatformSpec Spec = faultySpec("gpu-flaky-launch");
  ExecutionSession Session(Spec);
  SessionReport Report =
      Session.runEas(longTrace(20), desktopCurves(), Metric::edp());
  expectCompleted(Report, 20);
  EXPECT_GT(Report.Injected.LaunchFailures, 0u);
  EXPECT_GE(Report.Resilience.LaunchRetries, 1u);
}

TEST(FaultInjection, ThrottleCollapseStillCompletes) {
  PlatformSpec Spec = faultySpec("thermal-throttle");
  ExecutionSession Session(Spec);
  // Enough work to straddle the built-in throttle window [0.05 s, 0.4 s):
  // a short trace would finish before the collapse ever begins.
  InvocationTrace Trace = longTrace(60, 4e6);
  SessionReport Faulted = Session.runGpuOnly(Trace, Metric::edp());
  expectCompleted(Faulted, 60);
  EXPECT_GT(Faulted.Injected.ThrottleQueries, 0u);

  // The collapse costs wall-clock time against the healthy platform.
  ExecutionSession Healthy(haswellDesktop());
  SessionReport Clean = Healthy.runGpuOnly(Trace, Metric::edp());
  EXPECT_GT(Faulted.Seconds, Clean.Seconds);
}

TEST(FaultInjection, RaplGlitchSkewsMeasuredEnergyOnly) {
  PlatformSpec Spec = faultySpec("rapl-glitch");
  ExecutionSession Session(Spec);
  SessionReport Report = Session.runCpuOnly(longTrace(20), Metric::edp());
  expectCompleted(Report, 20);
  // The injector hit the meter...
  EXPECT_TRUE(Report.Injected.RaplSamplesDropped > 0 ||
              Report.Injected.RaplCounterJumps > 0);
  // ...but never the schedule: a CPU-only run is time-identical to the
  // healthy platform because only the package meter is perturbed.
  ExecutionSession Healthy(haswellDesktop());
  SessionReport Clean = Healthy.runCpuOnly(longTrace(20), Metric::edp());
  EXPECT_EQ(Report.Seconds, Clean.Seconds);
  EXPECT_NE(Report.Joules, Clean.Joules);
}

TEST(FaultInjection, DisabledInjectorIsBitIdenticalToLegacyPrimitive) {
  PlatformSpec Spec = haswellDesktop();
  ASSERT_FALSE(Spec.Faults.enabled());
  InvocationTrace Trace = longTrace(10);

  // Replay the trace through the legacy fixed-split primitive.
  SimProcessor Proc(Spec);
  EXPECT_EQ(Proc.faults(), nullptr);
  uint32_t MsrBefore = Proc.meter().readMsr();
  double Start = Proc.now();
  for (const KernelInvocation &Invocation : Trace)
    runPartitioned(Proc, Invocation.Kernel, Invocation.Iterations, 0.6);
  double LegacySeconds = Proc.now() - Start;
  double LegacyJoules = Proc.meter().joulesSince(MsrBefore);

  // The resilient session path must take its fault-free fast path and
  // reproduce the run bit for bit.
  ExecutionSession Session(Spec);
  SessionReport Report = Session.runFixedAlpha(Trace, 0.6, Metric::edp());
  EXPECT_EQ(Report.Seconds, LegacySeconds);
  EXPECT_EQ(Report.Joules, LegacyJoules);
  EXPECT_EQ(Report.MeanAlpha, 0.6);
  EXPECT_FALSE(Report.FaultsEnabled);
  EXPECT_FALSE(Report.Resilience.degraded());
  EXPECT_FALSE(Report.Injected.anyInjected());
}

TEST(FaultInjection, SeededScenariosAreReproducible) {
  PlatformSpec Spec = faultySpec("kitchen-sink");
  InvocationTrace Trace = longTrace(20);
  Metric Objective = Metric::edp();

  SessionReport A = ExecutionSession(Spec).runEas(Trace, desktopCurves(),
                                                  Objective);
  SessionReport B = ExecutionSession(Spec).runEas(Trace, desktopCurves(),
                                                  Objective);
  EXPECT_EQ(A.Seconds, B.Seconds);
  EXPECT_EQ(A.Joules, B.Joules);
  EXPECT_EQ(A.MeanAlpha, B.MeanAlpha);
  EXPECT_EQ(A.Resilience.HangsDetected, B.Resilience.HangsDetected);
  EXPECT_EQ(A.Resilience.Quarantines, B.Resilience.Quarantines);
  EXPECT_EQ(A.Injected.LaunchFailures, B.Injected.LaunchFailures);
}
