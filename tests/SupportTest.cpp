//===-- tests/SupportTest.cpp - support/ unit tests ------------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/support/Csv.h"
#include "ecas/support/Flags.h"
#include "ecas/support/Format.h"
#include "ecas/support/Random.h"
#include "ecas/support/Stats.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ecas;

TEST(Format, BasicFormatting) {
  EXPECT_EQ(formatString("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(Format, DurationUnits) {
  EXPECT_EQ(formatDuration(2.5e-9), "2.5 ns");
  EXPECT_EQ(formatDuration(3.25e-6), "3.25 us");
  EXPECT_EQ(formatDuration(1.5e-3), "1.50 ms");
  EXPECT_EQ(formatDuration(2.0), "2.000 s");
}

TEST(Format, EnergyUnits) {
  EXPECT_EQ(formatEnergy(5e-6), "5.00 uJ");
  EXPECT_EQ(formatEnergy(5e-3), "5.00 mJ");
  EXPECT_EQ(formatEnergy(5.0), "5.000 J");
  EXPECT_EQ(formatEnergy(5e3), "5.000 kJ");
}

TEST(Format, SplitAndTrim) {
  auto Parts = splitString(" a, b ,,c ", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "b");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
  EXPECT_EQ(trimString("\t x \n"), "x");
  EXPECT_EQ(trimString(""), "");
}

TEST(Format, ParseDouble) {
  double Value = 0.0;
  EXPECT_TRUE(parseDouble("3.5", Value));
  EXPECT_DOUBLE_EQ(Value, 3.5);
  EXPECT_TRUE(parseDouble(" -2e3 ", Value));
  EXPECT_DOUBLE_EQ(Value, -2000.0);
  EXPECT_FALSE(parseDouble("3.5x", Value));
  EXPECT_FALSE(parseDouble("", Value));
}

TEST(Format, ParseInt64) {
  long long Value = 0;
  EXPECT_TRUE(parseInt64("-17", Value));
  EXPECT_EQ(Value, -17);
  EXPECT_FALSE(parseInt64("12.5", Value));
  EXPECT_FALSE(parseInt64("abc", Value));
}

TEST(Format, Padding) {
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

TEST(Random, DeterministicAcrossInstances) {
  Xoshiro256 A(7), B(7);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, DoubleRange) {
  Xoshiro256 Rng(123);
  for (int I = 0; I != 1000; ++I) {
    double V = Rng.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
  for (int I = 0; I != 1000; ++I) {
    double V = Rng.nextDouble(5.0, 6.0);
    EXPECT_GE(V, 5.0);
    EXPECT_LT(V, 6.0);
  }
}

TEST(Random, BoundedIsUniformish) {
  Xoshiro256 Rng(99);
  int Counts[10] = {};
  const int Draws = 100000;
  for (int I = 0; I != Draws; ++I)
    ++Counts[Rng.nextBounded(10)];
  for (int Bucket = 0; Bucket != 10; ++Bucket)
    EXPECT_NEAR(Counts[Bucket], Draws / 10, Draws / 100);
}

TEST(Stats, RunningBasics) {
  RunningStats S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  for (double V : {1.0, 2.0, 3.0, 4.0})
    S.add(V);
  EXPECT_EQ(S.count(), 4u);
  EXPECT_DOUBLE_EQ(S.mean(), 2.5);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 4.0);
  EXPECT_NEAR(S.variance(), 1.25, 1e-12);
  EXPECT_NEAR(S.sum(), 10.0, 1e-12);
}

TEST(Stats, MergeMatchesSequential) {
  RunningStats All, Left, Right;
  Xoshiro256 Rng(5);
  for (int I = 0; I != 1000; ++I) {
    double V = Rng.nextDouble(-3.0, 7.0);
    All.add(V);
    (I % 2 ? Left : Right).add(V);
  }
  Left.merge(Right);
  EXPECT_EQ(Left.count(), All.count());
  EXPECT_NEAR(Left.mean(), All.mean(), 1e-9);
  EXPECT_NEAR(Left.variance(), All.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(Left.min(), All.min());
  EXPECT_DOUBLE_EQ(Left.max(), All.max());
}

TEST(Stats, Means) {
  EXPECT_DOUBLE_EQ(arithmeticMean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
  EXPECT_NEAR(geometricMean({1.0, 4.0, 16.0}), 4.0, 1e-12);
}

TEST(Stats, Quantiles) {
  std::vector<double> V{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(V, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(V, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(V, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(V, 0.25), 2.0);
}

TEST(Stats, QuantileEdgeCases) {
  // No data has no quantile — NaN, not a crash or a sentinel zero.
  EXPECT_TRUE(std::isnan(quantile({}, 0.5)));
  EXPECT_TRUE(std::isnan(quantileSorted({}, 0.5)));

  // One sample answers every quantile.
  EXPECT_DOUBLE_EQ(quantileSorted({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantileSorted({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantileSorted({7.0}, 1.0), 7.0);

  // Out-of-range Q clamps instead of indexing out of bounds.
  EXPECT_DOUBLE_EQ(quantileSorted({1.0, 2.0}, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantileSorted({1.0, 2.0}, 2.0), 2.0);

  // NaN samples are dropped before ranking.
  std::vector<double> WithNan{std::nan(""), 2.0, std::nan(""), 4.0};
  EXPECT_DOUBLE_EQ(quantile(WithNan, 0.5), 3.0);
  EXPECT_TRUE(std::isnan(quantile({std::nan("")}, 0.5)));
}

TEST(Stats, QuantileFromBuckets) {
  std::vector<double> Bounds{1.0, 2.0};
  // Empty histogram → NaN, matching the sample-based helper.
  EXPECT_TRUE(std::isnan(quantileFromBuckets(Bounds, {0, 0, 0}, 0.5)));

  // 10 below 1, 10 in (1,2]: the median sits on the shared edge and
  // intermediate ranks interpolate linearly inside their bucket.
  std::vector<uint64_t> Counts{10, 10, 0};
  EXPECT_DOUBLE_EQ(quantileFromBuckets(Bounds, Counts, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantileFromBuckets(Bounds, Counts, 0.75), 1.5);
  EXPECT_DOUBLE_EQ(quantileFromBuckets(Bounds, Counts, 0.25), 0.5);

  // Mass in the overflow bucket can only be bounded by the last edge.
  EXPECT_DOUBLE_EQ(quantileFromBuckets(Bounds, {0, 0, 5}, 0.5), 2.0);
}

TEST(Stats, FitQuality) {
  std::vector<double> Ref{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(rSquared(Ref, Ref), 1.0);
  EXPECT_DOUBLE_EQ(rmsError(Ref, Ref), 0.0);
  std::vector<double> Off{1.1, 2.1, 3.1};
  EXPECT_NEAR(rmsError(Ref, Off), 0.1, 1e-12);
  EXPECT_LT(rSquared(Ref, Off), 1.0);
}

TEST(Csv, QuotingAndRender) {
  CsvTable Table;
  Table.setHeader({"a", "b"});
  Table.addRow({"plain", "with,comma"});
  Table.addRow({"with\"quote", "line\nbreak"});
  Table.addNumericRow({1.5, 2.0});
  std::string Text = Table.render();
  EXPECT_NE(Text.find("a,b\n"), std::string::npos);
  EXPECT_NE(Text.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(Text.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(Text.find("1.5,2"), std::string::npos);
  EXPECT_EQ(Table.numRows(), 3u);
}

TEST(Flags, ParsingForms) {
  const char *Argv[] = {"prog", "--alpha=0.5", "--count=7", "--enable",
                        "positional"};
  Flags F(5, Argv);
  EXPECT_DOUBLE_EQ(F.getDouble("alpha", 0.0), 0.5);
  EXPECT_EQ(F.getInt("count", 0), 7);
  EXPECT_TRUE(F.getBool("enable", false));
  EXPECT_EQ(F.getString("missing", "dflt"), "dflt");
  ASSERT_EQ(F.positional().size(), 1u);
  EXPECT_EQ(F.positional()[0], "positional");
  EXPECT_EQ(F.reportUnknown(), 0u);
}

TEST(Flags, UnknownFlagsAreCounted) {
  const char *Argv[] = {"prog", "--typo=1"};
  Flags F(2, Argv);
  EXPECT_EQ(F.reportUnknown(), 1u);
}

TEST(Flags, BadNumberFallsBack) {
  const char *Argv[] = {"prog", "--alpha=abc"};
  Flags F(2, Argv);
  EXPECT_DOUBLE_EQ(F.getDouble("alpha", 0.25), 0.25);
}
