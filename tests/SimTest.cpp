//===-- tests/SimTest.cpp - sim/ unit tests --------------------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/fault/FaultPlan.h"
#include "ecas/hw/Presets.h"
#include "ecas/power/MicroBenchmarks.h"
#include "ecas/sim/EnergyMeter.h"
#include "ecas/sim/Pcu.h"
#include "ecas/sim/PowerModel.h"
#include "ecas/sim/PowerTrace.h"
#include "ecas/sim/SimProcessor.h"
#include "ecas/support/Random.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ecas;

TEST(EnergyMeter, AccumulatesAndConverts) {
  EnergyMeter Meter(1e-3); // 1 mJ units.
  uint32_t Before = Meter.readMsr();
  Meter.deposit(0.5);
  EXPECT_NEAR(Meter.joulesSince(Before), 0.5, 1e-3);
  EXPECT_DOUBLE_EQ(Meter.totalJoules(), 0.5);
}

TEST(EnergyMeter, FractionalUnitsCarry) {
  EnergyMeter Meter(1.0);
  for (int I = 0; I != 10; ++I)
    Meter.deposit(0.25); // 2.5 units total.
  EXPECT_EQ(Meter.readMsr(), 2u);
  EXPECT_DOUBLE_EQ(Meter.totalJoules(), 2.5);
}

TEST(EnergyMeter, WraparoundHandledBySamplingProtocol) {
  EnergyMeter Meter(1.0);
  // Drive the 32-bit counter near the top, then across it.
  Meter.deposit(4294967290.0);
  uint32_t Sample = Meter.readMsr();
  Meter.deposit(10.0);
  EXPECT_NEAR(Meter.joulesSince(Sample), 10.0, 1.0);
  EXPECT_LT(Meter.readMsr(), 10u); // Wrapped.
}

TEST(EnergyMeter, CounterPeriodIsOneFullCounterTrip) {
  EnergyMeter Meter(61e-6); // Desktop RAPL unit.
  EXPECT_DOUBLE_EQ(Meter.counterPeriodJoules(), 4294967296.0 * 61e-6);
}

TEST(EnergyMeter, TwoWrapIntervalAliasesByWholePeriods) {
  // Regression for the sampling-interval contract: an interval spanning
  // k >= 2 wraps under-reports by exactly k counter periods, and the
  // reader has no way to detect the loss.
  EnergyMeter Meter(1.0);
  uint32_t Sample = Meter.readMsr();
  double TwoWrapsAndChange = 2.0 * Meter.counterPeriodJoules() + 10.0;
  Meter.deposit(TwoWrapsAndChange);
  EXPECT_DOUBLE_EQ(Meter.totalJoules(), TwoWrapsAndChange);
  EXPECT_NEAR(Meter.joulesSince(Sample), 10.0, 1.0);
  EXPECT_NEAR(TwoWrapsAndChange - Meter.joulesSince(Sample),
              2.0 * Meter.counterPeriodJoules(), 1.0);
}

TEST(EnergyMeter, InjectedJumpSkewsMsrNotGroundTruth) {
  EnergyMeter Meter(1.0);
  Meter.deposit(100.0);
  uint32_t Before = Meter.readMsr();
  Meter.injectCounterJump((uint64_t(2) << 32) + 5); // Two wraps + 5 units.
  EXPECT_EQ(Meter.readMsr(), Before + 5u); // Only the low 32 bits survive.
  EXPECT_DOUBLE_EQ(Meter.totalJoules(), 100.0); // Truth untouched.
}

TEST(PowerModel, ComponentsAddUp) {
  PlatformSpec Spec = haswellDesktop();
  PowerBreakdown P = packagePower(Spec, 3.6, 1.0, 0.35, 0.02, 10.0);
  EXPECT_NEAR(P.packageWatts(), P.CpuWatts + P.GpuWatts + P.UncoreWatts,
              1e-12);
  EXPECT_GT(P.CpuWatts, Spec.CpuPower.LeakageWatts);
  EXPECT_NEAR(P.UncoreWatts,
              Spec.Uncore.BaseWatts + Spec.Uncore.WattsPerGBs * 10.0,
              1e-12);
}

TEST(PowerModel, CubicFrequencyScaling) {
  PlatformSpec Spec = haswellDesktop();
  double LowF = devicePower(Spec.CpuPower, 1.0, 1.0) -
                Spec.CpuPower.LeakageWatts;
  double HighF = devicePower(Spec.CpuPower, 2.0, 1.0) -
                 Spec.CpuPower.LeakageWatts;
  EXPECT_NEAR(HighF / LowF, 8.0, 1e-9);
}

TEST(Pcu, SingleDeviceTurboRampsUp) {
  PlatformSpec Spec = haswellDesktop();
  Pcu Governor(Spec);
  PcuObservation Obs;
  Obs.CpuActive = true;
  Obs.CpuActivity = 1.0;
  for (int Epoch = 0; Epoch != 10; ++Epoch)
    Governor.stepEpoch(Obs);
  EXPECT_DOUBLE_EQ(Governor.cpuFreqGHz(), Spec.Cpu.MaxTurboGHz);
  EXPECT_DOUBLE_EQ(Governor.gpuFreqGHz(), Spec.Gpu.MinFreqGHz);
}

TEST(Pcu, CoRunCapsCpuFrequency) {
  PlatformSpec Spec = haswellDesktop();
  Pcu Governor(Spec);
  PcuObservation Obs;
  Obs.CpuActive = true;
  Obs.GpuActive = true;
  Obs.CpuActivity = 1.0;
  Obs.GpuActivity = 1.0;
  for (int Epoch = 0; Epoch != 20; ++Epoch)
    Governor.stepEpoch(Obs);
  EXPECT_LE(Governor.cpuFreqGHz(), Spec.Cpu.CoRunMaxFreqGHz + 1e-12);
  EXPECT_DOUBLE_EQ(Governor.gpuFreqGHz(), Spec.Gpu.MaxFreqGHz);
}

TEST(Pcu, GpuWakeupResetsCpuToEfficiency) {
  PlatformSpec Spec = haswellDesktop();
  Pcu Governor(Spec);
  PcuObservation CpuOnly;
  CpuOnly.CpuActive = true;
  CpuOnly.CpuActivity = 1.0;
  for (int Epoch = 0; Epoch != 10; ++Epoch)
    Governor.stepEpoch(CpuOnly);
  ASSERT_DOUBLE_EQ(Governor.cpuFreqGHz(), Spec.Cpu.MaxTurboGHz);

  // GPU becomes active: Fig. 4's dip mechanism.
  PcuObservation Both = CpuOnly;
  Both.GpuActive = true;
  Both.GpuActivity = 0.5;
  Governor.stepEpoch(Both);
  EXPECT_LE(Governor.cpuFreqGHz(),
            Spec.Cpu.EfficiencyFreqGHz + Spec.Pcu.RampUpGHzPerEpoch + 1e-12);
  // Sustained co-running ramps back toward the co-run cap.
  for (int Epoch = 0; Epoch != 20; ++Epoch)
    Governor.stepEpoch(Both);
  EXPECT_NEAR(Governor.cpuFreqGHz(), Spec.Cpu.CoRunMaxFreqGHz, 1e-9);
}

TEST(Pcu, TabletBudgetThrottlesBothDevices) {
  PlatformSpec Spec = bayTrailTablet();
  Pcu Governor(Spec);
  PcuObservation Both;
  Both.CpuActive = true;
  Both.GpuActive = true;
  Both.CpuActivity = 1.0;
  Both.GpuActivity = 1.0;
  for (int Epoch = 0; Epoch != 30; ++Epoch)
    Governor.stepEpoch(Both);
  PowerBreakdown P =
      packagePower(Spec, Governor.cpuFreqGHz(), 1.0, Governor.gpuFreqGHz(),
                   1.0, Both.TrafficGBs);
  EXPECT_LE(P.packageWatts(), Spec.Pcu.TdpWatts + 0.05);
  // Proportional policy: the GPU also backed off its ceiling.
  EXPECT_LT(Governor.gpuFreqGHz(), Spec.Gpu.MaxFreqGHz);
  EXPECT_LT(Governor.cpuFreqGHz(), Spec.Cpu.CoRunMaxFreqGHz);
}

TEST(PowerTrace, ResamplesOntoGrid) {
  PowerTrace Trace(0.010);
  PowerBreakdown P;
  P.CpuWatts = 30.0;
  P.UncoreWatts = 10.0;
  Trace.addSegment(0.0, 0.025, P, 3.0, 0.35);
  Trace.finish();
  ASSERT_EQ(Trace.samples().size(), 3u);
  EXPECT_NEAR(Trace.samples()[0].PackageWatts, 40.0, 1e-9);
  EXPECT_NEAR(Trace.samples()[1].PackageWatts, 40.0, 1e-9);
  EXPECT_DOUBLE_EQ(Trace.samples()[0].TimeSec, 0.0);
  EXPECT_DOUBLE_EQ(Trace.samples()[1].TimeSec, 0.010);
}

TEST(PowerTrace, TimeWeightedAveraging) {
  PowerTrace Trace(0.010);
  PowerBreakdown Low, High;
  Low.CpuWatts = 10.0;
  High.CpuWatts = 30.0;
  Trace.addSegment(0.0, 0.005, Low, 1.0, 0.35);
  Trace.addSegment(0.005, 0.005, High, 2.0, 0.35);
  Trace.finish();
  ASSERT_EQ(Trace.samples().size(), 1u);
  EXPECT_NEAR(Trace.samples()[0].PackageWatts, 20.0, 1e-9);
  EXPECT_NEAR(Trace.samples()[0].CpuFreqGHz, 1.5, 1e-9);
}

TEST(PowerTrace, CsvHeaderAndRows) {
  PowerTrace Trace(0.010);
  PowerBreakdown P;
  P.GpuWatts = 5.0;
  Trace.addSegment(0.0, 0.010, P, 1.0, 1.0);
  Trace.finish();
  std::string Csv = Trace.toCsv();
  EXPECT_NE(Csv.find("time_s,package_w"), std::string::npos);
  EXPECT_NE(Csv.find("5.000"), std::string::npos);
}

TEST(SimProcessor, IdleConsumesIdlePower) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  Proc.runFor(1.0);
  double Watts = Proc.meter().totalJoules() / 1.0;
  // Idle: leakages + uncore base + tiny idle dynamic power.
  EXPECT_GT(Watts, 5.0);
  EXPECT_LT(Watts, 12.0);
  EXPECT_NEAR(Proc.now(), 1.0, 1e-9);
}

TEST(SimProcessor, CpuAloneComputeHitsCalibrationTarget) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  Proc.cpu().enqueue(computeBoundMicroKernel(), 1e12);
  Proc.runFor(1.0);
  double Watts = Proc.meter().totalJoules() / 1.0;
  // Paper: ~45 W CPU-alone compute-bound on the desktop (allow ramp-up).
  EXPECT_NEAR(Watts, 45.0, 3.0);
}

TEST(SimProcessor, GpuAloneComputeHitsCalibrationTarget) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  Proc.gpu().enqueue(computeBoundMicroKernel(), 1e12);
  Proc.runFor(1.0);
  double Watts = Proc.meter().totalJoules() / 1.0;
  // Paper: ~30 W GPU-alone compute-bound on the desktop.
  EXPECT_NEAR(Watts, 30.0, 3.0);
}

TEST(SimProcessor, CoRunComputeHitsCalibrationTarget) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  Proc.cpu().enqueue(computeBoundMicroKernel(), 1e12);
  Proc.gpu().enqueue(computeBoundMicroKernel(), 1e12);
  Proc.runFor(1.0);
  double Watts = Proc.meter().totalJoules() / 1.0;
  // Paper: ~55 W with CPU and GPU simultaneously busy.
  EXPECT_NEAR(Watts, 55.0, 4.0);
}

TEST(SimProcessor, MemoryBoundRunsHotterThanCompute) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Compute(Spec), Memory(Spec);
  Compute.cpu().enqueue(computeBoundMicroKernel(), 1e12);
  Compute.gpu().enqueue(computeBoundMicroKernel(), 1e12);
  Compute.runFor(1.0);
  Memory.cpu().enqueue(memoryBoundMicroKernel(), 1e12);
  Memory.gpu().enqueue(memoryBoundMicroKernel(), 1e12);
  Memory.runFor(1.0);
  // Fig. 3: memory-bound ~63 W vs compute-bound ~55 W on the desktop.
  EXPECT_GT(Memory.meter().totalJoules(), Compute.meter().totalJoules());
}

TEST(SimProcessor, TabletMemoryBoundRunsCoolerThanCompute) {
  PlatformSpec Spec = bayTrailTablet();
  SimProcessor Compute(Spec), Memory(Spec);
  Compute.cpu().enqueue(computeBoundMicroKernel(), 1e12);
  Compute.runFor(1.0);
  Memory.cpu().enqueue(memoryBoundMicroKernel(), 1e12);
  Memory.runFor(1.0);
  // Fig. 6: the tablet inverts the desktop relation.
  EXPECT_LT(Memory.meter().totalJoules(), Compute.meter().totalJoules());
}

TEST(SimProcessor, RunUntilIdleCompletesExactly) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  KernelDesc Kernel = computeBoundMicroKernel();
  Proc.cpu().enqueue(Kernel, 1e6);
  double Elapsed = Proc.runUntilIdle();
  EXPECT_FALSE(Proc.cpu().busy());
  EXPECT_GT(Elapsed, 0.0);
  EXPECT_NEAR(Proc.cpu().counters().IterationsDone, 1e6, 1.0);
}

TEST(SimProcessor, DeterministicAcrossRuns) {
  PlatformSpec Spec = haswellDesktop();
  auto RunOnce = [&Spec] {
    SimProcessor Proc(Spec);
    Proc.cpu().enqueue(memoryBoundMicroKernel(), 5e6);
    Proc.gpu().enqueue(memoryBoundMicroKernel(), 5e6);
    Proc.runUntilIdle();
    return std::make_pair(Proc.now(), Proc.meter().totalJoules());
  };
  auto [TimeA, EnergyA] = RunOnce();
  auto [TimeB, EnergyB] = RunOnce();
  EXPECT_DOUBLE_EQ(TimeA, TimeB);
  EXPECT_DOUBLE_EQ(EnergyA, EnergyB);
}

TEST(SimProcessor, ShortGpuBurstDipsPackagePower) {
  // Fig. 4: a memory-bound CPU phase at ~60 W dips well below when a
  // short GPU burst arrives (CPU reset to efficiency frequency).
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  Proc.enableTrace(0.005);
  KernelDesc Kernel = memoryBoundMicroKernel();

  // Long CPU phase to reach steady state.
  Proc.cpu().enqueue(Kernel, 1e12);
  Proc.runFor(0.5);
  double SteadyWatts = 0.0;
  {
    uint32_t Before = Proc.meter().readMsr();
    Proc.runFor(0.1);
    SteadyWatts = Proc.meter().joulesSince(Before) / 0.1;
  }
  // A GPU burst long enough for the governor to notice (Fig. 4's bursts
  // span several sampling intervals) while the CPU keeps running.
  uint32_t Before = Proc.meter().readMsr();
  double BurstStart = Proc.now();
  Proc.gpu().enqueue(Kernel, 1e7);
  Proc.runUntilGpuIdle();
  Proc.runFor(0.04); // The CPU is still ramping back up.
  double BurstWatts =
      Proc.meter().joulesSince(Before) / (Proc.now() - BurstStart);
  EXPECT_GT(SteadyWatts, 55.0);
  EXPECT_LT(BurstWatts, SteadyWatts - 5.0);
  // The trace minimum inside the burst shows the deep Fig. 4 dip.
  double MinWatts = 1e30;
  for (const TraceSample &Sample : Proc.trace()->samples())
    if (Sample.TimeSec >= BurstStart && Sample.PackageWatts > 0.0)
      MinWatts = std::min(MinWatts, Sample.PackageWatts);
  EXPECT_LT(MinWatts, SteadyWatts - 12.0);
}

TEST(Pcu, ResetRestoresPowerOnState) {
  PlatformSpec Spec = haswellDesktop();
  Pcu Governor(Spec);
  PcuObservation Obs;
  Obs.CpuActive = true;
  Obs.GpuActive = true;
  Obs.CpuActivity = 1.0;
  Obs.GpuActivity = 1.0;
  for (int Epoch = 0; Epoch != 5; ++Epoch)
    Governor.stepEpoch(Obs);
  Governor.reset();
  EXPECT_DOUBLE_EQ(Governor.cpuFreqGHz(), Spec.Cpu.BaseFreqGHz);
  EXPECT_DOUBLE_EQ(Governor.gpuFreqGHz(), Spec.Gpu.MinFreqGHz);
}

TEST(Pcu, DesktopBudgetThrottlesOnlyTheCpu) {
  // GpuPriority: with an artificially tight budget the CPU absorbs the
  // whole deficit while the GPU keeps its clock.
  PlatformSpec Spec = haswellDesktop();
  Spec.Pcu.TdpWatts = 40.0;
  Pcu Governor(Spec);
  PcuObservation Both;
  Both.CpuActive = true;
  Both.GpuActive = true;
  Both.CpuActivity = 1.0;
  Both.GpuActivity = 1.0;
  for (int Epoch = 0; Epoch != 30; ++Epoch)
    Governor.stepEpoch(Both);
  EXPECT_DOUBLE_EQ(Governor.gpuFreqGHz(), Spec.Gpu.MaxFreqGHz);
  EXPECT_LT(Governor.cpuFreqGHz(), Spec.Cpu.CoRunMaxFreqGHz);
  PowerBreakdown P = packagePower(Spec, Governor.cpuFreqGHz(), 1.0,
                                  Governor.gpuFreqGHz(), 1.0, 0.0);
  EXPECT_LE(P.packageWatts(), Spec.Pcu.TdpWatts + 0.05);
}

TEST(Pcu, TransitionGatesClocksWithoutPolicy) {
  PlatformSpec Spec = haswellDesktop();
  Pcu Governor(Spec);
  Governor.noteActivityTransition(/*CpuActive=*/true, /*GpuActive=*/true);
  EXPECT_DOUBLE_EQ(Governor.gpuFreqGHz(), Spec.Gpu.MaxFreqGHz);
  EXPECT_GE(Governor.cpuFreqGHz(), Spec.Cpu.BaseFreqGHz);
  Governor.noteActivityTransition(false, false);
  EXPECT_DOUBLE_EQ(Governor.gpuFreqGHz(), Spec.Gpu.MinFreqGHz);
  EXPECT_DOUBLE_EQ(Governor.cpuFreqGHz(), Spec.Cpu.MinFreqGHz);
}

TEST(SimProcessor, RunUntilGpuIdleLeavesCpuWork) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  KernelDesc Kernel = computeBoundMicroKernel();
  Proc.gpu().enqueue(Kernel, 1e6);
  Proc.cpu().enqueue(Kernel, 1e12);
  Proc.runUntilGpuIdle();
  EXPECT_FALSE(Proc.gpu().busy());
  EXPECT_TRUE(Proc.cpu().busy());
  EXPECT_GT(Proc.cpu().counters().IterationsDone, 0.0);
}

TEST(SimProcessor, EnergyMatchesTraceIntegral) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  Proc.enableTrace(0.01);
  Proc.cpu().enqueue(computeBoundMicroKernel(), 3e8);
  Proc.runUntilIdle();
  Proc.trace()->finish();
  double TraceJoules = 0.0;
  for (const TraceSample &Sample : Proc.trace()->samples())
    TraceJoules += Sample.PackageWatts * 0.01;
  // The last cell is partial, so allow one cell of slack.
  EXPECT_NEAR(TraceJoules, Proc.meter().totalJoules(),
              0.01 * 80.0 + 0.02 * Proc.meter().totalJoules());
}

TEST(SimProcessor, FractionalIterationsSupported) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  Proc.cpu().enqueue(computeBoundMicroKernel(), 1234.5);
  Proc.runUntilIdle();
  EXPECT_NEAR(Proc.cpu().counters().IterationsDone, 1234.5, 1e-6);
}

TEST(SimProcessor, ZeroByteKernelUsesNoBandwidth) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  KernelDesc Kernel = computeBoundMicroKernel(); // BytesPerIter == 0.
  Proc.cpu().enqueue(Kernel, 1e6);
  Proc.runUntilIdle();
  EXPECT_DOUBLE_EQ(Proc.cpu().counters().BytesTransferred, 0.0);
}

/// Property sweep: random deposit sequences keep the MSR protocol and
/// the ground-truth accumulator in agreement.
class EnergyMeterProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(EnergyMeterProperty, MsrProtocolTracksGroundTruth) {
  Xoshiro256 Rng(90 + GetParam());
  double Unit = Rng.nextDouble(1e-6, 1e-3);
  EnergyMeter Meter(Unit);
  uint32_t Sample = Meter.readMsr();
  double SinceSample = 0.0;
  for (int Step = 0; Step != 200; ++Step) {
    double Joules = Rng.nextDouble(0.0, 5.0);
    Meter.deposit(Joules);
    SinceSample += Joules;
    if (Step % 17 == 0) {
      EXPECT_NEAR(Meter.joulesSince(Sample), SinceSample,
                  Unit * (Step + 2));
      Sample = Meter.readMsr();
      SinceSample = 0.0;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDeposits, EnergyMeterProperty,
                         ::testing::Range(0u, 10u));

TEST(Pcu, HintJumpsToSteadyState) {
  PlatformSpec Spec = haswellDesktop();
  Pcu Governor(Spec);
  Governor.hintUpcomingSplit(0.5);
  EXPECT_DOUBLE_EQ(Governor.cpuFreqGHz(), Spec.Cpu.CoRunMaxFreqGHz);
  EXPECT_DOUBLE_EQ(Governor.gpuFreqGHz(), Spec.Gpu.MaxFreqGHz);
  // A hinted co-run does not fire the wake reset at the next epoch.
  PcuObservation Both;
  Both.CpuActive = true;
  Both.GpuActive = true;
  Both.CpuActivity = 1.0;
  Both.GpuActivity = 1.0;
  Governor.stepEpoch(Both);
  EXPECT_GE(Governor.cpuFreqGHz(), Spec.Cpu.CoRunMaxFreqGHz - 1e-9);

  Governor.hintUpcomingSplit(0.0);
  EXPECT_DOUBLE_EQ(Governor.cpuFreqGHz(), Spec.Cpu.MaxTurboGHz);
  EXPECT_DOUBLE_EQ(Governor.gpuFreqGHz(), Spec.Gpu.MinFreqGHz);
  Governor.hintUpcomingSplit(1.0);
  EXPECT_DOUBLE_EQ(Governor.cpuFreqGHz(), Spec.Cpu.MinFreqGHz);
}

TEST(Pcu, HintRespectsTabletBudget) {
  PlatformSpec Spec = bayTrailTablet();
  Pcu Governor(Spec);
  Governor.hintUpcomingSplit(0.5);
  PowerBreakdown P =
      packagePower(Spec, Governor.cpuFreqGHz(), 1.0, Governor.gpuFreqGHz(),
                   1.0, 0.0);
  EXPECT_LE(P.packageWatts(), Spec.Pcu.TdpWatts + 0.05);
}

TEST(SimProcessor, DomainMetersSumBelowPackage) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  Proc.cpu().enqueue(computeBoundMicroKernel(), 1e8);
  Proc.gpu().enqueue(computeBoundMicroKernel(), 1e8);
  Proc.runUntilIdle();
  double Pp0 = Proc.pp0Meter().totalJoules();
  double Pp1 = Proc.pp1Meter().totalJoules();
  double Pkg = Proc.meter().totalJoules();
  EXPECT_GT(Pp0, 0.0);
  EXPECT_GT(Pp1, 0.0);
  // Package = PP0 + PP1 + uncore, so the domains sum strictly below it.
  EXPECT_LT(Pp0 + Pp1, Pkg);
  EXPECT_GT(Pp0 + Pp1, 0.5 * Pkg);
}

TEST(SimProcessor, CpuOnlyRunKeepsGraphicsDomainCold) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  Proc.cpu().enqueue(computeBoundMicroKernel(), 1e8);
  double Elapsed = Proc.runUntilIdle();
  // PP1 sees only GPU leakage + idle clocking.
  EXPECT_LT(Proc.pp1Meter().totalJoules(),
            1.5 * Spec.GpuPower.LeakageWatts * Elapsed);
}

TEST(SimProcessor, RaplDropoutStarvesPackageMeterOnly) {
  PlatformSpec Spec = haswellDesktop();
  FaultEvent Drop;
  Drop.Kind = FaultKind::RaplDropout;
  Drop.Probability = 1.0;
  Spec.Faults.addEvent(Drop);
  SimProcessor Proc(Spec);
  uint32_t Pkg = Proc.meter().readMsr();
  uint32_t Pp0 = Proc.pp0Meter().readMsr();
  Proc.runFor(0.05);
  // Every package deposit was dropped, but the per-domain counters the
  // characterization never reads stay truthful.
  EXPECT_DOUBLE_EQ(Proc.meter().joulesSince(Pkg), 0.0);
  EXPECT_GT(Proc.pp0Meter().joulesSince(Pp0), 0.0);
  ASSERT_NE(Proc.faults(), nullptr);
  EXPECT_GT(Proc.faults()->stats().RaplSamplesDropped, 0u);
}

TEST(SimProcessor, RaplWrapJumpAliasesMeasurementNotTruth) {
  PlatformSpec Faulty = haswellDesktop();
  FaultEvent Jump;
  Jump.Kind = FaultKind::RaplWrapJump;
  Jump.StartSec = 0.01;
  Jump.Magnitude = 2.25;
  Faulty.Faults.addEvent(Jump);
  SimProcessor Faulted(Faulty);
  SimProcessor Clean(haswellDesktop());
  uint32_t FaultedBefore = Faulted.meter().readMsr();
  uint32_t CleanBefore = Clean.meter().readMsr();
  Faulted.runFor(0.05);
  Clean.runFor(0.05);
  // The jump advances the counter by 2.25 periods, of which only the
  // fractional 0.25 survives the modular read -- exactly the aliasing
  // case the EnergyMeter contract documents.
  double Skew = Faulted.meter().joulesSince(FaultedBefore) -
                Clean.meter().joulesSince(CleanBefore);
  EXPECT_NEAR(Skew, 0.25 * Faulted.meter().counterPeriodJoules(), 1e-6);
  EXPECT_DOUBLE_EQ(Faulted.meter().totalJoules(),
                   Clean.meter().totalJoules());
  EXPECT_EQ(Faulted.faults()->stats().RaplCounterJumps, 1u);
}

TEST(Pcu, FrequencyCapPinsTheCeiling) {
  // The DVFS actuation behind OperatingPoint::PState: a cap is an
  // external ceiling the governor must never exceed, however hard the
  // workload pushes for turbo.
  PlatformSpec Spec = haswellDesktop();
  Pcu Governor(Spec);
  double CpuCap = 0.5 * (Spec.Cpu.MinFreqGHz + Spec.Cpu.MaxTurboGHz);
  double GpuCap = 0.5 * (Spec.Gpu.MinFreqGHz + Spec.Gpu.MaxFreqGHz);
  Governor.setFrequencyCap(CpuCap, GpuCap);
  PcuObservation Both;
  Both.CpuActive = true;
  Both.GpuActive = true;
  Both.CpuActivity = 1.0;
  Both.GpuActivity = 1.0;
  for (int Epoch = 0; Epoch != 30; ++Epoch) {
    Governor.stepEpoch(Both);
    EXPECT_LE(Governor.cpuFreqGHz(), CpuCap + 1e-12);
    EXPECT_LE(Governor.gpuFreqGHz(), GpuCap + 1e-12);
  }

  // Caps survive reset(): they model a pinned sysfs ceiling, not
  // governor state.
  Governor.reset();
  EXPECT_DOUBLE_EQ(Governor.cpuFreqCapGHz(), CpuCap);
  for (int Epoch = 0; Epoch != 30; ++Epoch)
    Governor.stepEpoch(Both);
  EXPECT_LE(Governor.cpuFreqGHz(), CpuCap + 1e-12);

  // Clearing restores the spec envelope: turbo is reachable again.
  Governor.clearFrequencyCap();
  PcuObservation CpuOnly;
  CpuOnly.CpuActive = true;
  CpuOnly.CpuActivity = 1.0;
  for (int Epoch = 0; Epoch != 30; ++Epoch)
    Governor.stepEpoch(CpuOnly);
  EXPECT_DOUBLE_EQ(Governor.cpuFreqGHz(), Spec.Cpu.MaxTurboGHz);
}

TEST(Pcu, FrequencyCapBelowFloorClampsToFloor) {
  PlatformSpec Spec = haswellDesktop();
  Pcu Governor(Spec);
  Governor.setFrequencyCap(0.01, 0.01);
  PcuObservation Both;
  Both.CpuActive = true;
  Both.GpuActive = true;
  Both.CpuActivity = 1.0;
  Both.GpuActivity = 1.0;
  for (int Epoch = 0; Epoch != 10; ++Epoch)
    Governor.stepEpoch(Both);
  EXPECT_GE(Governor.cpuFreqGHz(), Spec.Cpu.MinFreqGHz - 1e-12);
  EXPECT_GE(Governor.gpuFreqGHz(), Spec.Gpu.MinFreqGHz - 1e-12);
}

TEST(SimProcessor, CappedClocksDrawLessPowerAndRunLonger) {
  // End-to-end DVFS effect: the same kernel at a capped P-state must
  // finish slower and draw less average power than at full speed —
  // the trade the joint (alpha, f) search exploits.
  PlatformSpec Spec = haswellDesktop();
  Spec.synthesizePStates(4);
  KernelDesc Kernel = computeBoundMicroKernel();
  double FullSeconds = 0.0, FullWatts = 0.0;
  {
    SimProcessor Proc(Spec);
    Proc.cpu().enqueue(Kernel, 2e7);
    Proc.gpu().enqueue(Kernel, 2e7);
    Proc.runUntilIdle();
    FullSeconds = Proc.now();
    FullWatts = Proc.meter().totalJoules() / FullSeconds;
  }
  PStateSpec Slow = Spec.pstateAt(3);
  SimProcessor Proc(Spec);
  Proc.pcu().setFrequencyCap(Slow.CpuFreqGHz, Slow.GpuFreqGHz);
  Proc.cpu().enqueue(Kernel, 2e7);
  Proc.gpu().enqueue(Kernel, 2e7);
  Proc.runUntilIdle();
  double SlowSeconds = Proc.now();
  double SlowWatts = Proc.meter().totalJoules() / SlowSeconds;
  EXPECT_GT(SlowSeconds, FullSeconds * 1.2);
  EXPECT_LT(SlowWatts, FullWatts * 0.8);
}
