//===-- tests/HwTest.cpp - hw/ unit tests ----------------------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/hw/Presets.h"

#include <gtest/gtest.h>

using namespace ecas;

TEST(PlatformSpec, PresetsValidate) {
  std::string Error;
  EXPECT_TRUE(haswellDesktop().validate(Error)) << Error;
  EXPECT_TRUE(bayTrailTablet().validate(Error)) << Error;
  EXPECT_EQ(allPresets().size(), 2u);
}

TEST(PlatformSpec, DesktopGeometryMatchesPaper) {
  PlatformSpec Spec = haswellDesktop();
  // Section 3.2: 20 EUs x 7 threads x 16-wide SIMD = 2240-way
  // parallelism, GPU_PROFILE_SIZE = 2048.
  EXPECT_EQ(Spec.gpuHardwareParallelism(), 2240u);
  EXPECT_EQ(Spec.defaultGpuProfileSize(), 2048u);
  EXPECT_EQ(Spec.Cpu.Cores, 4u);
  EXPECT_EQ(Spec.Cpu.ThreadsPerCore, 2u);
}

TEST(PlatformSpec, TabletGeometryMatchesPaper) {
  PlatformSpec Spec = bayTrailTablet();
  // 4 EUs x 7 threads x 16-wide SIMD = 448.
  EXPECT_EQ(Spec.gpuHardwareParallelism(), 448u);
  EXPECT_EQ(Spec.defaultGpuProfileSize(), 256u);
  EXPECT_DOUBLE_EQ(Spec.Gpu.MaxFreqGHz, 0.667);
}

TEST(PlatformSpec, SerializeRoundTrip) {
  PlatformSpec Spec = haswellDesktop();
  std::string Text = Spec.serialize();
  auto Restored = PlatformSpec::deserialize(Text);
  ASSERT_TRUE(Restored.has_value());
  EXPECT_EQ(Restored->Name, Spec.Name);
  EXPECT_EQ(Restored->Cpu.Cores, Spec.Cpu.Cores);
  EXPECT_DOUBLE_EQ(Restored->Cpu.MaxTurboGHz, Spec.Cpu.MaxTurboGHz);
  EXPECT_DOUBLE_EQ(Restored->GpuPower.CubicWattsPerGHz3,
                   Spec.GpuPower.CubicWattsPerGHz3);
  EXPECT_DOUBLE_EQ(Restored->Pcu.EnergyUnitJoules,
                   Spec.Pcu.EnergyUnitJoules);
  EXPECT_EQ(Restored->Pcu.GpuPriority, Spec.Pcu.GpuPriority);
  // Round-trip the round-trip: stable fixed point.
  EXPECT_EQ(Restored->serialize(), Text);
}

TEST(PlatformSpec, DeserializeRejectsGarbage) {
  EXPECT_FALSE(PlatformSpec::deserialize("not a spec").has_value());
  EXPECT_FALSE(PlatformSpec::deserialize("bogus.key = 3\n").has_value());
  EXPECT_FALSE(
      PlatformSpec::deserialize("cpu.cores = banana\n").has_value());
}

TEST(PlatformSpec, DeserializeSkipsCommentsAndBlanks) {
  PlatformSpec Spec = bayTrailTablet();
  std::string Text = "# a comment\n\n" + Spec.serialize();
  auto Restored = PlatformSpec::deserialize(Text);
  ASSERT_TRUE(Restored.has_value());
  EXPECT_EQ(Restored->Name, Spec.Name);
}

TEST(PlatformSpec, ValidateCatchesBadRanges) {
  PlatformSpec Spec = haswellDesktop();
  Spec.Cpu.MinFreqGHz = 5.0; // min > base
  std::string Error;
  EXPECT_FALSE(Spec.validate(Error));
  EXPECT_FALSE(Error.empty());

  Spec = haswellDesktop();
  Spec.Cpu.Cores = 0;
  EXPECT_FALSE(Spec.validate(Error));

  Spec = haswellDesktop();
  Spec.Memory.BandwidthGBs = -1.0;
  EXPECT_FALSE(Spec.validate(Error));

  Spec = haswellDesktop();
  Spec.Pcu.EnergyUnitJoules = 0.0;
  EXPECT_FALSE(Spec.validate(Error));

  Spec = haswellDesktop();
  Spec.CpuPower.ComputeActivity = 0.0;
  EXPECT_FALSE(Spec.validate(Error));
}

TEST(PlatformSpec, DeviceKindNames) {
  EXPECT_STREQ(deviceKindName(DeviceKind::Cpu), "cpu");
  EXPECT_STREQ(deviceKindName(DeviceKind::Gpu), "gpu");
}

TEST(PlatformSpec, LoadReportsParseErrorsWithLineNumbers) {
  ErrorOr<PlatformSpec> Result = PlatformSpec::load("no equals sign");
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrCode::ParseError);
  EXPECT_NE(Result.status().message().find("line 1"), std::string::npos);

  Result = PlatformSpec::load("name = x\nbogus.key = 3\n");
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrCode::ParseError);
  EXPECT_NE(Result.status().message().find("line 2"), std::string::npos);
}

TEST(PlatformSpec, LoadRejectsNonFiniteValues) {
  // NaN passes ordinary range comparisons, so load() screens finiteness
  // explicitly before validate() ever sees the value.
  std::string Text = haswellDesktop().serialize();
  size_t Key = Text.find("pcu.energy_unit_joules");
  ASSERT_NE(Key, std::string::npos);
  size_t Eq = Text.find(" = ", Key);
  size_t End = Text.find('\n', Eq);
  Text.replace(Eq, End - Eq, " = nan");
  ErrorOr<PlatformSpec> Result = PlatformSpec::load(Text);
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrCode::OutOfRange);
}

TEST(PlatformSpec, LoadRunsSemanticValidation) {
  // Structurally well-formed but semantically absurd specs surface
  // validate()'s message through the recoverable-error channel.
  PlatformSpec Spec = haswellDesktop();
  Spec.Cpu.Cores = 0;
  ErrorOr<PlatformSpec> Result = PlatformSpec::load(Spec.serialize());
  ASSERT_FALSE(Result.ok());
  EXPECT_EQ(Result.status().code(), ErrCode::InvalidArgument);
  EXPECT_FALSE(Result.status().message().empty());
}

TEST(PlatformSpec, PStateTableSerializeRoundTrip) {
  PlatformSpec Spec = haswellDesktop();
  Spec.synthesizePStates(4);
  std::string Error;
  ASSERT_TRUE(Spec.validate(Error)) << Error;

  auto Restored = PlatformSpec::deserialize(Spec.serialize());
  ASSERT_TRUE(Restored.has_value());
  EXPECT_EQ(Restored->PStateCount, 4u);
  for (unsigned I = 0; I != 4; ++I) {
    EXPECT_DOUBLE_EQ(Restored->PStates[I].CpuFreqGHz,
                     Spec.PStates[I].CpuFreqGHz);
    EXPECT_DOUBLE_EQ(Restored->PStates[I].GpuFreqGHz,
                     Spec.PStates[I].GpuFreqGHz);
  }
  EXPECT_EQ(Restored->serialize(), Spec.serialize());
}

TEST(PlatformSpec, EmptyPStateTableIsImplicitFullSpeed) {
  // Legacy specs advertise no ladder; the effective table is a single
  // full-speed state so pre-DVFS files load bit-identically.
  PlatformSpec Spec = haswellDesktop();
  EXPECT_EQ(Spec.PStateCount, 0u);
  EXPECT_EQ(Spec.pstateCount(), 1u);
  PStateSpec Full = Spec.pstateAt(0);
  EXPECT_DOUBLE_EQ(Full.CpuFreqGHz, Spec.Cpu.MaxTurboGHz);
  EXPECT_DOUBLE_EQ(Full.GpuFreqGHz, Spec.Gpu.MaxFreqGHz);
  // Out-of-range indices degrade to full speed rather than reading
  // stale table slots.
  EXPECT_DOUBLE_EQ(Spec.pstateAt(7).CpuFreqGHz, Spec.Cpu.MaxTurboGHz);
}

TEST(PlatformSpec, SynthesizedLadderSpansEnvelopeFastestFirst) {
  PlatformSpec Spec = haswellDesktop();
  Spec.synthesizePStates(5);
  EXPECT_EQ(Spec.pstateCount(), 5u);
  // Endpoints: ceiling at state 0, floor at the last state.
  EXPECT_DOUBLE_EQ(Spec.PStates[0].CpuFreqGHz, Spec.Cpu.MaxTurboGHz);
  EXPECT_DOUBLE_EQ(Spec.PStates[0].GpuFreqGHz, Spec.Gpu.MaxFreqGHz);
  EXPECT_NEAR(Spec.PStates[4].CpuFreqGHz, Spec.Cpu.MinFreqGHz, 1e-9);
  EXPECT_NEAR(Spec.PStates[4].GpuFreqGHz, Spec.Gpu.MinFreqGHz, 1e-9);
  // Strictly descending, and geometric: equal ratios between neighbours.
  double Ratio = Spec.PStates[1].CpuFreqGHz / Spec.PStates[0].CpuFreqGHz;
  for (unsigned I = 1; I != 5; ++I) {
    EXPECT_LT(Spec.PStates[I].CpuFreqGHz, Spec.PStates[I - 1].CpuFreqGHz);
    EXPECT_NEAR(Spec.PStates[I].CpuFreqGHz / Spec.PStates[I - 1].CpuFreqGHz,
                Ratio, 1e-9);
  }
  std::string Error;
  EXPECT_TRUE(Spec.validate(Error)) << Error;
  // Count is clamped to the table size, never silently dropped.
  Spec.synthesizePStates(99);
  EXPECT_EQ(Spec.pstateCount(), PlatformSpec::MaxPStates);
  EXPECT_TRUE(Spec.validate(Error)) << Error;
}

TEST(PlatformSpec, ValidateCatchesBadPStateTables) {
  std::string Error;

  // A clock above the envelope ceiling.
  PlatformSpec Spec = haswellDesktop();
  Spec.synthesizePStates(3);
  Spec.PStates[0].CpuFreqGHz = Spec.Cpu.MaxTurboGHz + 1.0;
  EXPECT_FALSE(Spec.validate(Error));
  EXPECT_NE(Error.find("pstate0"), std::string::npos);

  // Out-of-order ladder: state 1 faster than state 0.
  Spec = haswellDesktop();
  Spec.synthesizePStates(3);
  std::swap(Spec.PStates[0], Spec.PStates[1]);
  EXPECT_FALSE(Spec.validate(Error));
  EXPECT_NE(Error.find("must not raise"), std::string::npos);

  // Count beyond the fixed table.
  Spec = haswellDesktop();
  Spec.PStateCount = PlatformSpec::MaxPStates + 1;
  EXPECT_FALSE(Spec.validate(Error));
}
