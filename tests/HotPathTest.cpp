//===-- tests/HotPathTest.cpp - Allocation-free hot path -------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Runtime ground truth behind DESIGN.md §14 and tools/ecas_hotpath.py:
// this binary links support/AllocGuard.cpp, which replaces the global
// operator new/delete with counting forwarders, and asserts that the
// warmed steady-state decision path — table-G hit, alpha reuse,
// partitioned dispatch — performs zero heap allocations. The static
// analyzer proves the property over the call graph; these tests prove it
// over an actual execution, so a regression in either shows up twice.
//
//===----------------------------------------------------------------------===//

#include "ecas/core/EasScheduler.h"
#include "ecas/core/OperatingPoint.h"
#include "ecas/core/TimeModel.h"
#include "ecas/fault/GpuHealth.h"
#include "ecas/hw/Presets.h"
#include "ecas/obs/FlightRecorder.h"
#include "ecas/power/Characterizer.h"
#include "ecas/power/MicroBenchmarks.h"
#include "ecas/support/AllocGuard.h"

#include <gtest/gtest.h>

#include <memory>

using namespace ecas;

namespace {

/// Shared fixture: characterize the platform once and hand the curves to
/// every test (mirrors CoreTest's fixture).
const PowerCurveSet &desktopCurves() {
  static PowerCurveSet Curves =
      Characterizer(haswellDesktop()).characterize();
  return Curves;
}

/// Joint-search fixture: the same desktop with a 4-state DVFS ladder,
/// characterized per P-state.
const PlatformSpec &desktopLadderSpec() {
  static PlatformSpec Spec = [] {
    PlatformSpec S = haswellDesktop();
    S.synthesizePStates(4);
    return S;
  }();
  return Spec;
}

const PowerCurveFamily &desktopFamily() {
  static PowerCurveFamily Family = characterizeFamily(desktopLadderSpec());
  return Family;
}

} // namespace

TEST(AllocGuard, InterposerIsActive) {
  ASSERT_TRUE(alloc_guard::active());
}

// Meta-test: a tally that failed to observe a deliberate allocation
// would make every zero-allocation assertion below vacuous.
TEST(AllocGuard, CountsDeliberateAllocation) {
  AllocTally Tally;
  {
    auto Probe = std::make_unique<int>(42);
    ASSERT_NE(Probe.get(), nullptr);
  }
  EXPECT_GE(Tally.allocations(), 1u);
  EXPECT_GE(Tally.deallocations(), 1u);
}

TEST(AllocGuard, QuietRegionCountsNothing) {
  double Acc = 0.0;
  AllocTally Tally;
  for (int I = 0; I != 1000; ++I)
    Acc += static_cast<double>(I) * 0.5;
  EXPECT_GT(Acc, 0.0);
  EXPECT_EQ(Tally.allocations(), 0u);
}

// The tentpole claim: once a kernel's record is learned and the device
// queues are warmed, a table-hit invocation allocates nothing.
TEST(HotPath, WarmedTableHitIsAllocationFree) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  EasScheduler Scheduler(desktopCurves(), Metric::edp());
  KernelDesc Kernel = computeBoundMicroKernel();

  // First large invocation profiles (allocates freely); the next few
  // warm the device rings and any lazily-grown buffers to steady state.
  auto First = Scheduler.execute(Proc, Kernel, 2e6);
  ASSERT_TRUE(First.Profiled);
  for (int I = 0; I != 3; ++I) {
    auto Warm = Scheduler.execute(Proc, Kernel, 2e6);
    ASSERT_TRUE(Warm.TableHit);
  }

  AllocTally Tally;
  auto Hit = Scheduler.execute(Proc, Kernel, 2e6);
  EXPECT_TRUE(Hit.TableHit);
  EXPECT_EQ(Tally.allocations(), 0u)
      << "warmed table-hit dispatch must not touch the heap";
  EXPECT_EQ(Tally.deallocations(), 0u);
}

// The property holds across a long steady-state run, not just one lucky
// invocation — deque-style container churn allocated only every few
// dispatches, which a single-invocation window can miss.
TEST(HotPath, SteadyStateRunStaysAllocationFree) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  EasScheduler Scheduler(desktopCurves(), Metric::edp());
  KernelDesc Kernel = memoryBoundMicroKernel();

  ASSERT_TRUE(Scheduler.execute(Proc, Kernel, 2e6).Profiled);
  for (int I = 0; I != 3; ++I)
    ASSERT_TRUE(Scheduler.execute(Proc, Kernel, 2e6).TableHit);

  AllocTally Tally;
  for (int I = 0; I != 64; ++I) {
    auto Hit = Scheduler.execute(Proc, Kernel, 2e6);
    ASSERT_TRUE(Hit.TableHit);
  }
  EXPECT_EQ(Tally.allocations(), 0u)
      << "64 warmed invocations must not allocate";
}

// The joint (alpha, frequency) search runs on every profiling
// repetition; its objective closure must reach the Minimize.h templates
// as a stack lambda, and the per-state TimeModel rescale must stay a
// by-value copy. A std::function-based minimizer heap-allocated once
// per search (the 5-reference capture exceeds libstdc++'s 16-byte
// small-object buffer).
TEST(HotPath, JointSearchIsAllocationFree) {
  const PlatformSpec &Spec = desktopLadderSpec();
  const PowerCurveFamily &Family = desktopFamily();
  TimeModel Model(4e8, 7e8);
  Metric Objective = Metric::edp();

  PStateView Views[kMaxPStates];
  unsigned NumStates = Family.numPStates();
  ASSERT_EQ(NumStates, 4u);
  PStateSpec Full = Spec.pstateAt(0);
  for (unsigned S = 0; S != NumStates; ++S) {
    PStateSpec State = Spec.pstateAt(S);
    Views[S].Curve = &Family.stateCurves(S).curveFor(WorkloadClass{});
    Views[S].CpuFreqScale = State.CpuFreqGHz / Full.CpuFreqGHz;
    Views[S].GpuFreqScale = State.GpuFreqGHz / Full.GpuFreqGHz;
  }
  OperatingPointSearchConfig Search;
  Search.Step = 0.05;
  Search.Refine = true;
  Search.MemBoundFraction = 0.2;
  // Warm once: Metric's std::function body is constructed elsewhere and
  // the first evaluate() must not be charged to the search.
  Decision Warm =
      chooseOperatingPoint(Model, Views, NumStates, Objective, 1e6, Search);
  ASSERT_GT(Warm.Evaluations, 0u);

  AllocTally Tally;
  Decision Choice =
      chooseOperatingPoint(Model, Views, NumStates, Objective, 1e6, Search);
  EXPECT_GT(Choice.Evaluations, 0u);
  EXPECT_LT(Choice.Point.PState, NumStates);
  EXPECT_EQ(Tally.allocations(), 0u)
      << "grid + golden-section joint search must not allocate";
}

// The tentpole claim of the DVFS axis: with P-states on, a warmed
// table-hit decision — lookup, operating-point reuse, Amdahl rescale,
// frequency-cap actuation, partitioned dispatch — still allocates
// nothing.
TEST(HotPath, WarmedJointDecisionIsAllocationFree) {
  const PlatformSpec &Spec = desktopLadderSpec();
  SimProcessor Proc(Spec);
  EasConfig Config;
  Config.PStates = true;
  EasScheduler Scheduler(desktopFamily(), Metric::energy(), Config);
  KernelDesc Kernel = computeBoundMicroKernel();

  ASSERT_TRUE(Scheduler.execute(Proc, Kernel, 2e6).Profiled);
  for (int I = 0; I != 3; ++I)
    ASSERT_TRUE(Scheduler.execute(Proc, Kernel, 2e6).TableHit);

  AllocTally Tally;
  for (int I = 0; I != 64; ++I) {
    auto Hit = Scheduler.execute(Proc, Kernel, 2e6);
    ASSERT_TRUE(Hit.TableHit);
    ASSERT_LT(Hit.PState, Spec.pstateCount());
  }
  EXPECT_EQ(Tally.allocations(), 0u)
      << "64 warmed joint decisions must not allocate";
}

// The flight recorder's whole reason to exist: armed, always-on, and
// still zero allocations on the warmed path. Each thread's ring
// storage is allocated at its first event — which warmup covers — so a
// steady-state record is a leaf-lock plus a POD slot copy.
TEST(HotPath, WarmedHitWithFlightRecorderIsAllocationFree) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  obs::FlightRecorder Flight;
  EasConfig Config;
  Config.Flight = &Flight;
  EasScheduler Scheduler(desktopCurves(), Metric::edp(), Config);
  KernelDesc Kernel = computeBoundMicroKernel();

  // Profiling registers this thread's ring and fills the first slots;
  // the warm laps reach ring steady state (wrapping included).
  ASSERT_TRUE(Scheduler.execute(Proc, Kernel, 2e6).Profiled);
  for (int I = 0; I != 3; ++I)
    ASSERT_TRUE(Scheduler.execute(Proc, Kernel, 2e6).TableHit);
  ASSERT_GT(Flight.eventsRecorded(), 0u);

  AllocTally Tally;
  for (int I = 0; I != 64; ++I) {
    auto Hit = Scheduler.execute(Proc, Kernel, 2e6);
    ASSERT_TRUE(Hit.TableHit);
  }
  EXPECT_EQ(Tally.allocations(), 0u)
      << "64 warmed invocations with the flight recorder armed must "
         "not allocate";

  // And the recording actually happened — the zero above must not be
  // the zero of a disarmed recorder.
  obs::FlightSnapshot Snap = Flight.drain();
  EXPECT_GE(Snap.DecisionsRecorded, 68u);
  EXPECT_FALSE(Snap.Decisions.empty());
  EXPECT_FALSE(Snap.Trace.Events.empty());
}

// Fault-monitor reads sit on every dispatch; the lock-free mirrors must
// answer without the health mutex or any heap traffic.
TEST(HotPath, GpuHealthReadsAreAllocationFree) {
  GpuHealthMonitor Monitor;
  AllocTally Tally;
  for (int I = 0; I != 256; ++I) {
    ASSERT_TRUE(Monitor.gpuUsable(static_cast<double>(I)));
    ASSERT_TRUE(Monitor.pristine());
    ASSERT_EQ(Monitor.recoveries(), 0u);
  }
  EXPECT_EQ(Tally.allocations(), 0u);
}

// Negative control for the whole harness: a table MISS (first sighting
// of a kernel) profiles and is expected to allocate. If this ever reads
// zero the interposer is not interposing the path under test.
TEST(HotPath, ColdProfilingPathDoesAllocate) {
  PlatformSpec Spec = haswellDesktop();
  SimProcessor Proc(Spec);
  EasScheduler Scheduler(desktopCurves(), Metric::edp());
  KernelDesc Kernel = computeBoundMicroKernel();

  AllocTally Tally;
  auto First = Scheduler.execute(Proc, Kernel, 2e6);
  ASSERT_TRUE(First.Profiled);
  EXPECT_GT(Tally.allocations(), 0u);
}
