//===-- tests/MetricsTest.cpp - Metrics registry & telemetry --------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Coverage of the metrics tentpole: the lock-free histogram fast path
/// (bucket placement, le semantics, NaN handling, concurrent recording
/// with exact totals), snapshot merging, the Prometheus/JSON/report
/// exporters and the Prometheus parser round trip, the decision audit
/// ring, and the two end-to-end invariants: an EAS run's
/// eas_model_*_rel_error histogram mean equals the SessionReport mean
/// bitwise for a single-class trace, and a null registry leaves
/// scheduling bit-identical.
///
//===----------------------------------------------------------------------===//

#include "ecas/core/ExecutionSession.h"
#include "ecas/hw/Presets.h"
#include "ecas/obs/DecisionLog.h"
#include "ecas/obs/MetricNames.h"
#include "ecas/obs/Metrics.h"
#include "ecas/obs/MetricsExport.h"
#include "ecas/power/Characterizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

using namespace ecas;

namespace {

KernelDesc testKernel(const char *Name = "metrics-probe") {
  KernelDesc Kernel;
  Kernel.Name = Name;
  return Kernel.withAutoId();
}

/// One kernel repeated: every invocation lands in a single workload
/// class, which is what makes the report-vs-histogram mean comparison
/// exact.
InvocationTrace singleClassTrace(unsigned Invocations = 60,
                                 double Iterations = 2e6) {
  InvocationTrace Trace;
  for (unsigned I = 0; I != Invocations; ++I)
    Trace.push_back({testKernel(), Iterations});
  return Trace;
}

const PowerCurveSet &desktopCurves() {
  static PowerCurveSet Curves = Characterizer(haswellDesktop()).characterize();
  return Curves;
}

void expectSameMeasurement(const SessionReport &A, const SessionReport &B) {
  EXPECT_EQ(A.Seconds, B.Seconds);
  EXPECT_EQ(A.Joules, B.Joules);
  EXPECT_EQ(A.MetricValue, B.MetricValue);
  EXPECT_EQ(A.MeanAlpha, B.MeanAlpha);
  EXPECT_EQ(A.Invocations, B.Invocations);
}

} // namespace

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(MetricsRegistry, ReturnsSameInstrumentForSameNameAndLabels) {
  obs::MetricsRegistry Registry;
  obs::Counter &A = Registry.counter("eas_test_total", {}, "help");
  obs::Counter &B = Registry.counter("eas_test_total", {}, "other help");
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(Registry.size(), 1u);

  obs::Counter &Labeled =
      Registry.counter("eas_test_total", {{"class", "c0"}}, "");
  EXPECT_NE(&A, &Labeled);
  EXPECT_EQ(Registry.size(), 2u);

  A.add();
  A.add(2.5);
  Labeled.add(4.0);
  obs::MetricsSnapshot Snap = Registry.snapshot();
  // total() folds every variant of a family (histograms excluded).
  EXPECT_DOUBLE_EQ(Snap.total("eas_test_total"), 7.5);
  const obs::MetricSample *Plain = Snap.find("eas_test_total", {});
  ASSERT_NE(Plain, nullptr);
  EXPECT_DOUBLE_EQ(Plain->Value, 3.5);
  // Help comes from the first registration.
  EXPECT_EQ(Plain->Help, "help");
}

TEST(MetricsRegistry, GaugeSetsAndAdds) {
  obs::MetricsRegistry Registry;
  obs::Gauge &G = Registry.gauge("eas_drain_seconds", {}, "");
  G.set(2.0);
  G.add(0.5);
  EXPECT_DOUBLE_EQ(G.value(), 2.5);
  G.set(0.25);
  EXPECT_DOUBLE_EQ(Registry.snapshot().find("eas_drain_seconds")->Value, 0.25);
}

TEST(MetricsRegistry, SnapshotIsSortedByNameThenLabels) {
  obs::MetricsRegistry Registry;
  Registry.counter("eas_zz_total", {}, "");
  Registry.counter("eas_aa_total", {{"class", "c1"}}, "");
  Registry.counter("eas_aa_total", {{"class", "c0"}}, "");
  obs::MetricsSnapshot Snap = Registry.snapshot();
  ASSERT_EQ(Snap.Samples.size(), 3u);
  EXPECT_EQ(Snap.Samples[0].Name, "eas_aa_total");
  EXPECT_EQ(Snap.Samples[0].Labels[0].second, "c0");
  EXPECT_EQ(Snap.Samples[1].Labels[0].second, "c1");
  EXPECT_EQ(Snap.Samples[2].Name, "eas_zz_total");
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(Histogram, BucketPlacementUsesLessOrEqual) {
  obs::MetricsRegistry Registry;
  obs::Histogram &H =
      Registry.histogram("eas_lat_seconds", {1.0, 2.0, 4.0}, {}, "");
  H.record(0.5);  // bucket 0 (le 1)
  H.record(1.0);  // bucket 0: a value equal to an edge belongs to it
  H.record(1.5);  // bucket 1 (le 2)
  H.record(4.0);  // bucket 2 (le 4)
  H.record(9.0);  // overflow (+Inf)
  H.record(-3.0); // below every bound still lands in bucket 0
  obs::HistogramSnapshot Snap = H.snapshot();
  ASSERT_EQ(Snap.Counts.size(), 4u);
  EXPECT_EQ(Snap.Counts[0], 3u);
  EXPECT_EQ(Snap.Counts[1], 1u);
  EXPECT_EQ(Snap.Counts[2], 1u);
  EXPECT_EQ(Snap.Counts[3], 1u);
  EXPECT_EQ(Snap.Count, 6u);
  EXPECT_DOUBLE_EQ(Snap.Sum, 0.5 + 1.0 + 1.5 + 4.0 + 9.0 - 3.0);
  EXPECT_DOUBLE_EQ(Snap.Min, -3.0);
  EXPECT_DOUBLE_EQ(Snap.Max, 9.0);
}

TEST(Histogram, NanIsDroppedAndEmptySnapshotIsZeroed) {
  obs::MetricsRegistry Registry;
  obs::Histogram &H = Registry.histogram("eas_lat_seconds", {1.0}, {}, "");
  H.record(std::nan(""));
  obs::HistogramSnapshot Snap = H.snapshot();
  EXPECT_EQ(Snap.Count, 0u);
  EXPECT_DOUBLE_EQ(Snap.Sum, 0.0);
  EXPECT_DOUBLE_EQ(Snap.Min, 0.0);
  EXPECT_DOUBLE_EQ(Snap.Max, 0.0);
  EXPECT_TRUE(std::isnan(Snap.quantile(0.5)));
}

TEST(Histogram, QuantilesInterpolateWithinBuckets) {
  obs::MetricsRegistry Registry;
  obs::Histogram &H =
      Registry.histogram("eas_lat_seconds", {1.0, 2.0, 4.0}, {}, "");
  // 10 samples in (0,1], 10 in (1,2]: the median sits exactly on the
  // first edge, p75 halfway through the second bucket.
  for (int I = 0; I != 10; ++I) {
    H.record(0.5);
    H.record(1.5);
  }
  obs::HistogramSnapshot Snap = H.snapshot();
  EXPECT_DOUBLE_EQ(Snap.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(Snap.quantile(0.75), 1.5);
  EXPECT_DOUBLE_EQ(Snap.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(Snap.quantile(1.0), 2.0);
  EXPECT_DOUBLE_EQ(Snap.mean(), 1.0);
}

TEST(Histogram, MergeFoldsCountsAndExtrema) {
  obs::MetricsRegistry A, B;
  obs::Histogram &Ha = A.histogram("eas_lat_seconds", {1.0, 2.0}, {}, "");
  obs::Histogram &Hb = B.histogram("eas_lat_seconds", {1.0, 2.0}, {}, "");
  Ha.record(0.25);
  Ha.record(1.5);
  Hb.record(0.75);
  Hb.record(8.0);
  obs::HistogramSnapshot Merged = Ha.snapshot();
  Merged.merge(Hb.snapshot());
  EXPECT_EQ(Merged.Count, 4u);
  EXPECT_DOUBLE_EQ(Merged.Sum, 0.25 + 1.5 + 0.75 + 8.0);
  EXPECT_DOUBLE_EQ(Merged.Min, 0.25);
  EXPECT_DOUBLE_EQ(Merged.Max, 8.0);
  EXPECT_EQ(Merged.Counts[0], 2u);
  EXPECT_EQ(Merged.Counts[1], 1u);
  EXPECT_EQ(Merged.Counts[2], 1u);

  // Merging an empty snapshot must not poison the extrema.
  obs::MetricsRegistry C;
  obs::HistogramSnapshot Empty =
      C.histogram("eas_lat_seconds", {1.0, 2.0}, {}, "").snapshot();
  obs::HistogramSnapshot Kept = Ha.snapshot();
  Kept.merge(Empty);
  EXPECT_DOUBLE_EQ(Kept.Min, 0.25);
  EXPECT_DOUBLE_EQ(Kept.Max, 1.5);
}

TEST(Histogram, BucketGenerators) {
  std::vector<double> Log = obs::logBuckets(1.0, 2.0, 4);
  ASSERT_EQ(Log.size(), 4u);
  EXPECT_DOUBLE_EQ(Log[0], 1.0);
  EXPECT_DOUBLE_EQ(Log[3], 8.0);
  std::vector<double> Lin = obs::linearBuckets(0.0, 0.25, 4);
  ASSERT_EQ(Lin.size(), 4u);
  EXPECT_DOUBLE_EQ(Lin[0], 0.25);
  EXPECT_DOUBLE_EQ(Lin[3], 1.0);
}

TEST(Histogram, ConcurrentRecordingIsExact) {
  obs::MetricsRegistry Registry;
  obs::Histogram &H =
      Registry.histogram("eas_mt_seconds", {2.0, 5.0}, {}, "");
  obs::Counter &Total = Registry.counter("eas_mt_total", {}, "");
  constexpr unsigned Threads = 4;
  constexpr unsigned PerThread = 20000;
  std::vector<std::thread> Writers;
  for (unsigned T = 0; T != Threads; ++T)
    Writers.emplace_back([&H, &Total] {
      for (unsigned I = 0; I != PerThread; ++I) {
        // Integer values: double fetch_add sums them exactly, so the
        // totals below are equalities, not tolerances.
        H.record(static_cast<double>(I % 8));
        Total.add();
      }
    });
  for (std::thread &W : Writers)
    W.join();

  obs::HistogramSnapshot Snap = H.snapshot();
  EXPECT_EQ(Snap.Count, uint64_t{Threads} * PerThread);
  // Per thread: sum of 0..7 over 20000/8 cycles.
  EXPECT_DOUBLE_EQ(Snap.Sum, double(Threads) * (PerThread / 8) * 28.0);
  // Values 0,1,2 le 2.0; 3,4,5 le 5.0; 6,7 overflow.
  EXPECT_EQ(Snap.Counts[0], uint64_t{Threads} * PerThread / 8 * 3);
  EXPECT_EQ(Snap.Counts[1], uint64_t{Threads} * PerThread / 8 * 3);
  EXPECT_EQ(Snap.Counts[2], uint64_t{Threads} * PerThread / 8 * 2);
  EXPECT_DOUBLE_EQ(Snap.Min, 0.0);
  EXPECT_DOUBLE_EQ(Snap.Max, 7.0);
  EXPECT_DOUBLE_EQ(Total.value(), double(Threads) * PerThread);
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

TEST(MetricsExport, PrometheusGolden) {
  obs::MetricsRegistry Registry;
  // FP-exact values (powers of two and their sums) keep the golden
  // stable across platforms.
  obs::Histogram &H = Registry.histogram("eas_lat_seconds", {0.5, 1.0},
                                         {{"class", "c0"}}, "latency");
  H.record(0.25);
  H.record(0.5);
  H.record(2.0);
  Registry.counter("eas_test_total", {}, "a counter").add(3.0);

  std::string Text = obs::renderPrometheus(Registry.snapshot());
  EXPECT_EQ(Text, "# HELP eas_lat_seconds latency\n"
                  "# TYPE eas_lat_seconds histogram\n"
                  "eas_lat_seconds_bucket{class=\"c0\",le=\"0.5\"} 2\n"
                  "eas_lat_seconds_bucket{class=\"c0\",le=\"1\"} 2\n"
                  "eas_lat_seconds_bucket{class=\"c0\",le=\"+Inf\"} 3\n"
                  "eas_lat_seconds_sum{class=\"c0\"} 2.75\n"
                  "eas_lat_seconds_count{class=\"c0\"} 3\n"
                  "# HELP eas_test_total a counter\n"
                  "# TYPE eas_test_total counter\n"
                  "eas_test_total 3\n");
}

TEST(MetricsExport, PrometheusEscapesLabelValues) {
  obs::MetricsRegistry Registry;
  Registry.counter("eas_esc_total", {{"path", "a\\b\"c\nd"}}, "").add();
  std::string Text = obs::renderPrometheus(Registry.snapshot());
  EXPECT_NE(Text.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos);

  // The parser must invert the escaping exactly.
  ErrorOr<obs::MetricsSnapshot> Back = obs::parsePrometheusText(Text);
  ASSERT_TRUE(Back.ok()) << Back.status().message();
  ASSERT_EQ(Back.value().Samples.size(), 1u);
  EXPECT_EQ(Back.value().Samples[0].Labels[0].second, "a\\b\"c\nd");
}

TEST(MetricsExport, JsonRendersValuesAndHistograms) {
  obs::MetricsRegistry Registry;
  Registry.counter("eas_test_total", {{"k", "v"}}, "").add(2.0);
  obs::Histogram &H = Registry.histogram("eas_lat_seconds", {1.0}, {}, "");
  H.record(0.5);
  std::string Json = obs::renderMetricsJson(Registry.snapshot());
  EXPECT_NE(Json.find("\"name\": \"eas_test_total\""), std::string::npos);
  EXPECT_NE(Json.find("\"kind\": \"counter\""), std::string::npos);
  EXPECT_NE(Json.find("\"k\": \"v\""), std::string::npos);
  EXPECT_NE(Json.find("\"value\": 2"), std::string::npos);
  EXPECT_NE(Json.find("\"bounds\": [1]"), std::string::npos);
  EXPECT_NE(Json.find("\"counts\": [1, 0]"), std::string::npos);
  EXPECT_NE(Json.find("\"sum\": 0.5"), std::string::npos);
}

TEST(MetricsExport, PrometheusRoundTrip) {
  obs::MetricsRegistry Registry;
  obs::Histogram &H = Registry.histogram(
      "eas_lat_seconds", obs::logBuckets(0.001, 4.0, 6), {{"class", "c3"}},
      "round trip");
  for (double V : {0.0005, 0.002, 0.002, 0.3, 10.0, 1e6})
    H.record(V);
  Registry.counter("eas_test_total", {}, "").add(41.0);
  Registry.gauge("eas_drain_seconds", {}, "drain").set(0.125);

  obs::MetricsSnapshot Before = Registry.snapshot();
  ErrorOr<obs::MetricsSnapshot> After =
      obs::parsePrometheusText(obs::renderPrometheus(Before));
  ASSERT_TRUE(After.ok()) << After.status().message();
  ASSERT_EQ(After.value().Samples.size(), Before.Samples.size());
  for (size_t I = 0; I != Before.Samples.size(); ++I) {
    const obs::MetricSample &B = Before.Samples[I];
    const obs::MetricSample &A = After.value().Samples[I];
    EXPECT_EQ(A.Name, B.Name);
    EXPECT_EQ(A.Kind, B.Kind);
    EXPECT_EQ(A.Labels, B.Labels);
    if (B.Kind == obs::MetricKind::Histogram) {
      EXPECT_EQ(A.Hist.UpperBounds, B.Hist.UpperBounds);
      EXPECT_EQ(A.Hist.Counts, B.Hist.Counts);
      EXPECT_EQ(A.Hist.Count, B.Hist.Count);
      EXPECT_EQ(A.Hist.Sum, B.Hist.Sum);
    } else {
      EXPECT_EQ(A.Value, B.Value);
    }
  }
}

TEST(MetricsExport, ParserRejectsMalformedInput) {
  // Histogram with no +Inf bucket: incomplete, not silently dropped.
  ErrorOr<obs::MetricsSnapshot> NoInf = obs::parsePrometheusText(
      "# TYPE eas_lat_seconds histogram\n"
      "eas_lat_seconds_bucket{le=\"1\"} 2\n"
      "eas_lat_seconds_sum 1.5\n"
      "eas_lat_seconds_count 2\n");
  ASSERT_FALSE(NoInf.ok());
  EXPECT_EQ(NoInf.status().code(), ErrCode::Incomplete);

  // Cumulative counts that go down are corrupt.
  ErrorOr<obs::MetricsSnapshot> Shrinking = obs::parsePrometheusText(
      "# TYPE eas_lat_seconds histogram\n"
      "eas_lat_seconds_bucket{le=\"1\"} 5\n"
      "eas_lat_seconds_bucket{le=\"+Inf\"} 3\n"
      "eas_lat_seconds_sum 1.5\n"
      "eas_lat_seconds_count 3\n");
  ASSERT_FALSE(Shrinking.ok());
  EXPECT_EQ(Shrinking.status().code(), ErrCode::CorruptData);

  ErrorOr<obs::MetricsSnapshot> Garbage =
      obs::parsePrometheusText("eas_test_total not-a-number\n");
  ASSERT_FALSE(Garbage.ok());
  EXPECT_EQ(Garbage.status().code(), ErrCode::ParseError);
}

TEST(MetricsExport, ReportRendersHistogramSummaries) {
  obs::MetricsRegistry Registry;
  obs::Histogram &H = Registry.histogram("eas_lat_seconds", {1.0, 2.0}, {}, "");
  for (int I = 0; I != 4; ++I)
    H.record(0.5);
  Registry.counter("eas_test_total", {}, "").add(7.0);
  std::string Report = obs::renderMetricsReport(Registry.snapshot());
  EXPECT_NE(Report.find("eas_lat_seconds"), std::string::npos);
  EXPECT_NE(Report.find("count=4"), std::string::npos);
  EXPECT_NE(Report.find("p50="), std::string::npos);
  EXPECT_NE(Report.find("p99="), std::string::npos);
  EXPECT_NE(Report.find("eas_test_total"), std::string::npos);
}

TEST(MetricsExport, WriteFileAtomicReplacesContent) {
  std::string Path = ::testing::TempDir() + "ecas_metrics_atomic.txt";
  ASSERT_TRUE(obs::writeFileAtomic(Path, "first\n").ok());
  ASSERT_TRUE(obs::writeFileAtomic(Path, "second\n").ok());
  std::ifstream In(Path);
  std::string Content((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(Content, "second\n");
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// DecisionLog
//===----------------------------------------------------------------------===//

TEST(DecisionLog, RingKeepsNewestRecordsOldestFirst) {
  obs::DecisionLog Log(4);
  for (uint64_t I = 0; I != 10; ++I) {
    obs::DecisionRecord R;
    R.KernelId = 100 + I;
    Log.append(R);
  }
  EXPECT_EQ(Log.appended(), 10u);
  std::vector<obs::DecisionRecord> Snap = Log.snapshot();
  ASSERT_EQ(Snap.size(), 4u);
  for (size_t I = 0; I != Snap.size(); ++I) {
    EXPECT_EQ(Snap[I].Sequence, 6 + I);
    EXPECT_EQ(Snap[I].KernelId, 106 + I);
  }
}

TEST(DecisionLog, SinksRenderCsvAndJsonLines) {
  obs::DecisionLog Log;
  obs::DecisionRecord R;
  R.KernelId = 7;
  R.ClassIndex = 3;
  R.Alpha = 0.5;
  R.HasPrediction = true;
  R.PredictedSeconds = 0.25;
  R.TableHit = true;
  Log.append(R);
  Log.append(R);

  std::string Csv = obs::DecisionLogSink::renderCsv(Log.snapshot());
  EXPECT_EQ(Csv.find("sequence"), 0u); // header row first
  EXPECT_EQ(std::count(Csv.begin(), Csv.end(), '\n'), 3); // header + 2 rows

  std::string Jsonl = obs::DecisionLogSink::renderJsonLines(Log.snapshot());
  EXPECT_EQ(std::count(Jsonl.begin(), Jsonl.end(), '\n'), 2);
  EXPECT_EQ(Jsonl.front(), '{');
  EXPECT_NE(Jsonl.find("\"kernel_id\": 7"), std::string::npos);

  std::string Path = ::testing::TempDir() + "ecas_decisions.csv";
  ASSERT_TRUE(obs::DecisionLogSink::write(Log, Path).ok());
  std::ifstream In(Path);
  std::string Content((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(Content, Csv);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// End to end through the scheduler
//===----------------------------------------------------------------------===//

TEST(EasTelemetry, RegistryMatchesSessionReport) {
  InvocationTrace Trace = singleClassTrace();
  ExecutionSession Session(haswellDesktop());

  obs::MetricsRegistry Registry;
  obs::DecisionLog Decisions;
  RunOptions Options;
  Options.Trace = &Trace;
  Options.Curves = &desktopCurves();
  Options.Objective = Metric::edp();
  Options.Metrics = &Registry;
  Options.Decisions = &Decisions;
  SessionReport Report = Session.run(SchemeKind::Eas, Options);

  obs::MetricsSnapshot Snap = Registry.snapshot();
  EXPECT_DOUBLE_EQ(Snap.total(obs::names::InvocationsTotal),
                   double(Report.Invocations));
  EXPECT_DOUBLE_EQ(Snap.total(obs::names::TableHitsTotal) +
                       Snap.total(obs::names::TableMissesTotal),
                   double(Report.Invocations));
  EXPECT_DOUBLE_EQ(Snap.total(obs::names::ProfileRepsTotal),
                   double(Report.ProfileRepetitions));
  EXPECT_DOUBLE_EQ(Snap.total(obs::names::CpuOnlyTotal),
                   double(Report.CpuOnlyFastPaths));
  EXPECT_GT(Snap.total(obs::names::MsrReadsTotal), 0.0);

  const obs::MetricSample *Alpha = Snap.find(obs::names::AlphaChosen);
  ASSERT_NE(Alpha, nullptr);
  EXPECT_EQ(Alpha->Hist.Count, uint64_t{Report.Invocations});

  // Exactly one workload class saw model samples (one kernel repeated),
  // and its histogram was folded in the same order as the report means —
  // the equality is bitwise, not approximate.
  ASSERT_GT(Report.ModelSamples, 0u);
  uint64_t TimeErrCount = 0;
  const obs::MetricSample *ClassSample = nullptr;
  for (const obs::MetricSample &S : Snap.Samples) {
    if (S.Name != obs::names::ModelTimeRelError)
      continue;
    TimeErrCount += S.Hist.Count;
    if (S.Hist.Count)
      ClassSample = &S;
  }
  EXPECT_EQ(TimeErrCount, uint64_t{Report.ModelSamples});
  ASSERT_NE(ClassSample, nullptr);
  EXPECT_EQ(ClassSample->Hist.mean(), Report.ModelTimeRelError);
  ASSERT_EQ(ClassSample->Labels.size(), 1u);
  EXPECT_EQ(ClassSample->Labels[0].first, "class");

  const obs::MetricSample *EnergySample =
      Snap.find(obs::names::ModelEnergyRelError, ClassSample->Labels);
  ASSERT_NE(EnergySample, nullptr);
  EXPECT_EQ(EnergySample->Hist.Count, uint64_t{Report.ModelSamples});
  EXPECT_EQ(EnergySample->Hist.mean(), Report.ModelEnergyRelError);

  // One audit record per invocation; the newest ones are resident.
  EXPECT_EQ(Decisions.appended(), uint64_t{Report.Invocations});
  EXPECT_DOUBLE_EQ(Snap.total(obs::names::DecisionsLoggedTotal),
                   double(Report.Invocations));
  std::vector<obs::DecisionRecord> Audit = Decisions.snapshot();
  ASSERT_FALSE(Audit.empty());
  unsigned Hits = 0, Misses = 0;
  for (const obs::DecisionRecord &R : Audit) {
    EXPECT_FALSE(R.Cancelled);
    Hits += R.TableHit;
    Misses += R.Profiled;
  }
  EXPECT_EQ(Hits + Misses, unsigned(Audit.size()));
}

TEST(EasTelemetry, NullRegistryIsBitIdentical) {
  InvocationTrace Trace = singleClassTrace();
  ExecutionSession Session(haswellDesktop());
  SessionReport Bare =
      Session.runEas(Trace, desktopCurves(), Metric::edp());

  obs::MetricsRegistry Registry;
  obs::DecisionLog Decisions;
  RunOptions Options;
  Options.Trace = &Trace;
  Options.Curves = &desktopCurves();
  Options.Objective = Metric::edp();
  Options.Metrics = &Registry;
  Options.Decisions = &Decisions;
  SessionReport Observed = Session.run(SchemeKind::Eas, Options);

  // The telemetry is pure observation: const reads of the clock, the
  // emulated MSR, and table G. Attaching it must not move a single bit.
  expectSameMeasurement(Bare, Observed);
  EXPECT_EQ(Bare.ProfileRepetitions, Observed.ProfileRepetitions);
  EXPECT_EQ(Bare.AlphaSearches, Observed.AlphaSearches);

  // Table-hit invocations only re-evaluate the model when telemetry is
  // attached (the bare fast path stays one lookup + dispatch), so the
  // observed run reports model samples for hits the bare run skipped.
  EXPECT_GT(Bare.ModelSamples, 0u);
  EXPECT_GE(Observed.ModelSamples, Bare.ModelSamples);
}

TEST(EasTelemetry, PStateLabelRendersAndRoundTrips) {
  // With a multi-state family the per-class error and alpha series gain
  // a "pstate" label; the strict Prometheus text codec must carry it
  // losslessly (satellite 6 of the OperatingPoint redesign).
  PlatformSpec Spec = haswellDesktop();
  Spec.synthesizePStates(3);
  CharacterizerConfig CharConfig;
  CharConfig.AlphaStep = 0.5;
  CharConfig.PolyDegree = 2;
  PowerCurveFamily Family = characterizeFamily(Spec, CharConfig);

  InvocationTrace Trace = singleClassTrace();
  ExecutionSession Session(Spec);
  obs::MetricsRegistry Registry;
  RunOptions Options;
  Options.Trace = &Trace;
  Options.CurveFamily = &Family;
  Options.Objective = Metric::energy();
  Options.Metrics = &Registry;
  Options.Eas.PStates = true;
  SessionReport Report = Session.run(SchemeKind::Eas, Options);
  ASSERT_GT(Report.Invocations, 0u);

  obs::MetricsSnapshot Snap = Registry.snapshot();
  const obs::MetricSample *Alpha = nullptr;
  for (const obs::MetricSample &S : Snap.Samples) {
    if (S.Name != obs::names::AlphaChosen || !S.Hist.Count)
      continue;
    Alpha = &S;
    break;
  }
  ASSERT_NE(Alpha, nullptr);
  bool SawPState = false;
  std::string PStateValue;
  for (const auto &[Key, Value] : Alpha->Labels) {
    if (Key != "pstate")
      continue;
    SawPState = true;
    PStateValue = Value;
  }
  EXPECT_TRUE(SawPState);

  // The per-class model-error series fan out by both class and pstate.
  for (const obs::MetricSample &S : Snap.Samples) {
    if (S.Name != obs::names::ModelTimeRelError || !S.Hist.Count)
      continue;
    bool HasClass = false, HasPState = false;
    for (const auto &[Key, Value] : S.Labels) {
      HasClass |= Key == "class";
      HasPState |= Key == "pstate";
    }
    EXPECT_TRUE(HasClass);
    EXPECT_TRUE(HasPState);
  }
  // The label holds a bare ladder index within the advertised table.
  ASSERT_FALSE(PStateValue.empty());
  unsigned Index = std::stoul(PStateValue);
  EXPECT_LT(Index, Spec.pstateCount());

  std::string Text = obs::renderPrometheus(Snap);
  EXPECT_NE(Text.find("pstate=\"" + PStateValue + "\""), std::string::npos);
  ErrorOr<obs::MetricsSnapshot> Parsed = obs::parsePrometheusText(Text);
  ASSERT_TRUE(Parsed.ok()) << Parsed.status().toString();
  const obs::MetricSample *Back =
      Parsed->find(obs::names::AlphaChosen, Alpha->Labels);
  ASSERT_NE(Back, nullptr);
  EXPECT_EQ(Back->Hist.Count, Alpha->Hist.Count);
  EXPECT_EQ(obs::renderPrometheus(*Parsed), Text);
}

TEST(EasTelemetry, PStateResidencyGaugeAccumulates) {
  // Every completed invocation adds its virtual seconds to the gauge of
  // the P-state it ran in, so summed residency across the family equals
  // the work the scheduler actually placed — the statusz "pstate" lines
  // read these same instruments.
  PlatformSpec Spec = haswellDesktop();
  Spec.synthesizePStates(3);
  CharacterizerConfig CharConfig;
  CharConfig.AlphaStep = 0.5;
  CharConfig.PolyDegree = 2;
  PowerCurveFamily Family = characterizeFamily(Spec, CharConfig);

  InvocationTrace Trace = singleClassTrace();
  ExecutionSession Session(Spec);
  obs::MetricsRegistry Registry;
  RunOptions Options;
  Options.Trace = &Trace;
  Options.CurveFamily = &Family;
  Options.Objective = Metric::energy();
  Options.Metrics = &Registry;
  Options.Eas.PStates = true;
  SessionReport Report = Session.run(SchemeKind::Eas, Options);
  ASSERT_GT(Report.Invocations, 0u);

  obs::MetricsSnapshot Snap = Registry.snapshot();
  size_t ResidencySamples = 0;
  double TotalResidency = 0.0;
  for (const obs::MetricSample &S : Snap.Samples) {
    if (S.Name != obs::names::PStateResidencySeconds)
      continue;
    ++ResidencySamples;
    EXPECT_EQ(S.Kind, obs::MetricKind::Gauge);
    ASSERT_EQ(S.Labels.size(), 1u);
    EXPECT_EQ(S.Labels[0].first, "pstate");
    unsigned Index = std::stoul(S.Labels[0].second);
    EXPECT_LT(Index, Spec.pstateCount());
    EXPECT_GE(S.Value, 0.0);
    TotalResidency += S.Value;
  }
  // One gauge per ladder state, registered eagerly so the family is
  // complete (zero-valued states included), and the run left real
  // residency behind.
  EXPECT_EQ(ResidencySamples, size_t{Spec.pstateCount()});
  EXPECT_GT(TotalResidency, 0.0);
}
