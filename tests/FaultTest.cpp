//===-- tests/FaultTest.cpp - fault plan / injector / health units --------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// Unit coverage of the fault-injection subsystem: FaultPlan's text
/// round-trip and error reporting, FaultInjector's seeded determinism
/// and per-kind semantics, and the GpuHealthMonitor quarantine state
/// machine the degradation policy is built on.
///
//===----------------------------------------------------------------------===//

#include "ecas/fault/FaultInjector.h"
#include "ecas/fault/FaultPlan.h"
#include "ecas/fault/GpuHealth.h"

#include <gtest/gtest.h>

using namespace ecas;

namespace {

FaultEvent makeEvent(FaultKind Kind, double Start, double End, double Mag,
                     double Prob) {
  FaultEvent Event;
  Event.Kind = Kind;
  Event.StartSec = Start;
  Event.EndSec = End;
  Event.Magnitude = Mag;
  Event.Probability = Prob;
  return Event;
}

} // namespace

//===----------------------------------------------------------------------===//
// FaultPlan
//===----------------------------------------------------------------------===//

TEST(FaultPlan, EmptyPlanIsDisabled) {
  FaultPlan Plan;
  EXPECT_FALSE(Plan.enabled());
  Plan.addEvent(makeEvent(FaultKind::GpuHang, 0.0, 1.0, 0.0, 1.0));
  EXPECT_TRUE(Plan.enabled());
}

TEST(FaultPlan, SerializeLoadRoundTrip) {
  FaultPlan Plan;
  Plan.setName("round-trip");
  Plan.setSeed(12345);
  Plan.addEvent(makeEvent(FaultKind::GpuLaunchFail, 0.0, 1e30, 0.0, 0.25));
  Plan.addEvent(makeEvent(FaultKind::GpuThrottle, 0.1, 0.5, 0.125, 1.0));
  Plan.addEvent(makeEvent(FaultKind::RaplWrapJump, 0.2, 1e30, 2.25, 1.0));

  ErrorOr<FaultPlan> Reloaded = FaultPlan::load(Plan.serialize());
  ASSERT_TRUE(Reloaded.ok()) << Reloaded.status().toString();
  EXPECT_EQ(Reloaded->name(), "round-trip");
  EXPECT_EQ(Reloaded->seed(), 12345u);
  ASSERT_EQ(Reloaded->events().size(), 3u);
  EXPECT_EQ(Reloaded->events()[1].Kind, FaultKind::GpuThrottle);
  EXPECT_DOUBLE_EQ(Reloaded->events()[1].Magnitude, 0.125);
  EXPECT_DOUBLE_EQ(Reloaded->events()[0].Probability, 0.25);
}

TEST(FaultPlan, LoadSkipsCommentsAndBlanks) {
  ErrorOr<FaultPlan> Plan = FaultPlan::load(
      "# a comment\n\nname = commented\nfault gpu-hang start=0 end=1\n");
  ASSERT_TRUE(Plan.ok());
  EXPECT_EQ(Plan->name(), "commented");
  ASSERT_EQ(Plan->events().size(), 1u);
}

TEST(FaultPlan, LoadRejectsUnknownKindWithLineNumber) {
  ErrorOr<FaultPlan> Plan =
      FaultPlan::load("name = bad\nfault gpu-melt start=0 end=1\n");
  ASSERT_FALSE(Plan.ok());
  EXPECT_EQ(Plan.status().code(), ErrCode::ParseError);
  EXPECT_NE(Plan.status().message().find("line 2"), std::string::npos);
}

TEST(FaultPlan, LoadRejectsInvertedWindow) {
  ErrorOr<FaultPlan> Plan =
      FaultPlan::load("fault gpu-hang start=2 end=1\n");
  ASSERT_FALSE(Plan.ok());
  EXPECT_EQ(Plan.status().code(), ErrCode::OutOfRange);
}

TEST(FaultPlan, LoadRejectsBadProbabilityAndThrottleScale) {
  EXPECT_FALSE(FaultPlan::load("fault gpu-launch-fail prob=0\n").ok());
  EXPECT_FALSE(FaultPlan::load("fault gpu-launch-fail prob=1.5\n").ok());
  EXPECT_FALSE(FaultPlan::load("fault gpu-throttle mag=1.5\n").ok());
  EXPECT_FALSE(FaultPlan::load("fault gpu-hang start=nan\n").ok());
}

TEST(FaultPlan, EveryNamedScenarioLoads) {
  std::vector<std::string> Names = FaultPlan::scenarioNames();
  EXPECT_FALSE(Names.empty());
  for (const std::string &Name : Names) {
    ErrorOr<FaultPlan> Plan = FaultPlan::scenario(Name);
    ASSERT_TRUE(Plan.ok()) << Name;
    EXPECT_TRUE(Plan->enabled()) << Name;
    // Each scenario must survive its own text round-trip.
    ErrorOr<FaultPlan> Reloaded = FaultPlan::load(Plan->serialize());
    ASSERT_TRUE(Reloaded.ok()) << Name;
    EXPECT_EQ(Reloaded->events().size(), Plan->events().size()) << Name;
  }
  EXPECT_FALSE(FaultPlan::scenario("no-such-scenario").ok());
}

//===----------------------------------------------------------------------===//
// FaultInjector
//===----------------------------------------------------------------------===//

TEST(FaultInjector, SameSeedSameRealization) {
  FaultPlan Plan;
  Plan.setSeed(99);
  Plan.addEvent(makeEvent(FaultKind::GpuLaunchFail, 0.0, 1e30, 0.0, 0.5));

  FaultInjector A(Plan), B(Plan);
  for (int I = 0; I < 64; ++I) {
    double Now = 0.001 * I;
    EXPECT_EQ(A.gpuLaunchFails(Now), B.gpuLaunchFails(Now)) << I;
  }
  EXPECT_GT(A.stats().LaunchFailures, 0u);
  EXPECT_LT(A.stats().LaunchFailures, 64u);
}

TEST(FaultInjector, EventsOnlyFireInsideTheirWindow) {
  FaultPlan Plan;
  Plan.addEvent(makeEvent(FaultKind::GpuThrottle, 0.1, 0.2, 0.25, 1.0));
  FaultInjector Injector(Plan);
  EXPECT_DOUBLE_EQ(Injector.gpuThroughputScale(0.05), 1.0);
  EXPECT_DOUBLE_EQ(Injector.gpuThroughputScale(0.15), 0.25);
  EXPECT_DOUBLE_EQ(Injector.gpuThroughputScale(0.25), 1.0);
}

TEST(FaultInjector, HangForcesZeroThroughputOverThrottle) {
  FaultPlan Plan;
  Plan.addEvent(makeEvent(FaultKind::GpuThrottle, 0.0, 1.0, 0.5, 1.0));
  Plan.addEvent(makeEvent(FaultKind::GpuHang, 0.0, 1.0, 0.0, 1.0));
  FaultInjector Injector(Plan);
  EXPECT_DOUBLE_EQ(Injector.gpuThroughputScale(0.5), 0.0);
}

TEST(FaultInjector, WrapJumpFiresExactlyOnce) {
  FaultPlan Plan;
  Plan.addEvent(makeEvent(FaultKind::RaplWrapJump, 0.1, 1e30, 2.0, 1.0));
  FaultInjector Injector(Plan);
  EXPECT_EQ(Injector.pendingRaplJumpUnits(0.05), 0u);
  uint64_t Units = Injector.pendingRaplJumpUnits(0.15);
  EXPECT_EQ(Units, uint64_t(2) << 32);
  EXPECT_EQ(Injector.pendingRaplJumpUnits(0.2), 0u);
  EXPECT_EQ(Injector.stats().RaplCounterJumps, 1u);
}

TEST(FaultInjector, CounterNoiseStaysInsideBand) {
  FaultPlan Plan;
  Plan.addEvent(makeEvent(FaultKind::CounterNoise, 0.0, 1.0, 0.2, 1.0));
  FaultInjector Injector(Plan);
  for (int I = 0; I < 100; ++I) {
    double Scale = Injector.counterNoiseScale(0.5);
    EXPECT_GE(Scale, 0.8);
    EXPECT_LE(Scale, 1.2);
  }
  EXPECT_DOUBLE_EQ(Injector.counterNoiseScale(1.5), 1.0);
  EXPECT_EQ(Injector.stats().NoisyCounterReads, 100u);
}

TEST(FaultInjector, DropoutRespectsProbabilityRoughly) {
  FaultPlan Plan;
  Plan.addEvent(makeEvent(FaultKind::RaplDropout, 0.0, 1e30, 0.0, 0.5));
  FaultInjector Injector(Plan);
  unsigned Dropped = 0;
  for (int I = 0; I < 1000; ++I)
    Dropped += Injector.dropRaplSample(0.001 * I) ? 1 : 0;
  EXPECT_GT(Dropped, 400u);
  EXPECT_LT(Dropped, 600u);
  EXPECT_EQ(Injector.stats().RaplSamplesDropped, Dropped);
}

//===----------------------------------------------------------------------===//
// GpuHealthMonitor
//===----------------------------------------------------------------------===//

TEST(GpuHealth, StartsHealthyAndPristine) {
  GpuHealthMonitor Monitor;
  EXPECT_EQ(Monitor.state(), GpuHealthState::Healthy);
  EXPECT_TRUE(Monitor.pristine());
  EXPECT_TRUE(Monitor.gpuUsable(0.0));
  // A success on a healthy device changes nothing.
  Monitor.noteGpuSuccess(0.0);
  EXPECT_TRUE(Monitor.pristine());
  EXPECT_EQ(Monitor.stats().Recoveries, 0u);
}

TEST(GpuHealth, HangQuarantinesUntilBackoffExpires) {
  GpuHealthConfig Config;
  Config.InitialQuarantineSec = 0.5;
  GpuHealthMonitor Monitor(Config);

  Monitor.noteHang(1.0);
  EXPECT_EQ(Monitor.state(), GpuHealthState::Quarantined);
  EXPECT_FALSE(Monitor.pristine());
  EXPECT_FALSE(Monitor.gpuUsable(1.2));
  EXPECT_DOUBLE_EQ(Monitor.quarantinedUntil(), 1.5);

  // First query past expiry flips to Probing and permits the dispatch.
  EXPECT_TRUE(Monitor.gpuUsable(1.6));
  EXPECT_EQ(Monitor.state(), GpuHealthState::Probing);
  EXPECT_EQ(Monitor.stats().ProbesAttempted, 1u);

  Monitor.noteGpuSuccess(1.7);
  EXPECT_EQ(Monitor.state(), GpuHealthState::Healthy);
  EXPECT_EQ(Monitor.stats().Recoveries, 1u);
  // Recovery never restores pristineness: a fault happened.
  EXPECT_FALSE(Monitor.pristine());
}

TEST(GpuHealth, QuarantineBackoffDoublesAndResetsOnRecovery) {
  GpuHealthConfig Config;
  Config.InitialQuarantineSec = 0.1;
  Config.QuarantineBackoffMultiplier = 2.0;
  Config.MaxQuarantineSec = 0.3;
  GpuHealthMonitor Monitor(Config);

  Monitor.noteHang(0.0); // quarantine #1: 0.1 s
  EXPECT_DOUBLE_EQ(Monitor.quarantinedUntil(), 0.1);
  EXPECT_TRUE(Monitor.gpuUsable(0.2)); // probing
  Monitor.noteHang(0.2); // probe failed -> quarantine #2: 0.2 s
  EXPECT_DOUBLE_EQ(Monitor.quarantinedUntil(), 0.4);
  EXPECT_TRUE(Monitor.gpuUsable(0.5));
  Monitor.noteHang(0.5); // quarantine #3 capped at 0.3 s
  EXPECT_DOUBLE_EQ(Monitor.quarantinedUntil(), 0.8);
  EXPECT_EQ(Monitor.stats().Quarantines, 3u);
  EXPECT_EQ(Monitor.stats().HangsDetected, 3u);

  // Recovery resets the backoff to the initial quarantine length.
  EXPECT_TRUE(Monitor.gpuUsable(0.9));
  Monitor.noteGpuSuccess(0.9);
  Monitor.noteHang(1.0);
  EXPECT_DOUBLE_EQ(Monitor.quarantinedUntil(), 1.1);
}

TEST(GpuHealth, LaunchFailureAloneDoesNotQuarantine) {
  GpuHealthMonitor Monitor;
  Monitor.noteLaunchFailure(0.0);
  EXPECT_EQ(Monitor.state(), GpuHealthState::Healthy);
  EXPECT_FALSE(Monitor.pristine());
  EXPECT_EQ(Monitor.stats().LaunchFailures, 1u);

  Monitor.noteLaunchAbandoned(0.0);
  EXPECT_EQ(Monitor.state(), GpuHealthState::Quarantined);
  EXPECT_EQ(Monitor.stats().LaunchesAbandoned, 1u);
  EXPECT_EQ(Monitor.stats().Quarantines, 1u);
}

TEST(GpuHealth, StateNamesAreStable) {
  EXPECT_STREQ(gpuHealthStateName(GpuHealthState::Healthy), "healthy");
  EXPECT_STREQ(gpuHealthStateName(GpuHealthState::Quarantined),
               "quarantined");
  EXPECT_STREQ(gpuHealthStateName(GpuHealthState::Probing), "probing");
}
