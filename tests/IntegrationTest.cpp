//===-- tests/IntegrationTest.cpp - cross-module behaviour -----------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end checks of the paper's headline claims on reduced-scale
/// inputs: scheme orderings on both platforms, the CC crossover shape of
/// Fig. 1, and EAS's efficiency band relative to the Oracle.
///
//===----------------------------------------------------------------------===//

#include "ecas/core/ExecutionSession.h"
#include "ecas/hw/Presets.h"
#include "ecas/power/Characterizer.h"
#include "ecas/workloads/GraphWorkloads.h"
#include "ecas/workloads/Registry.h"

#include <gtest/gtest.h>

using namespace ecas;

namespace {

const PowerCurveSet &curvesFor(const PlatformSpec &Spec) {
  static PowerCurveSet Desktop =
      Characterizer(haswellDesktop()).characterize();
  static PowerCurveSet Tablet =
      Characterizer(bayTrailTablet()).characterize();
  return Spec.Name == "haswell-desktop" ? Desktop : Tablet;
}

WorkloadConfig testConfig() {
  WorkloadConfig Config;
  Config.Scale = 0.05; // Keep real graph algorithms quick in tests.
  return Config;
}

} // namespace

TEST(Integration, Fig1CcEnergyAndPerfCrossover) {
  // Fig. 1: CC's best-performance alpha lies strictly inside (0, 1) and
  // below the minimum-energy alpha, which sits near full GPU offload.
  PlatformSpec Spec = haswellDesktop();
  ExecutionSession Session(Spec);
  Workload Cc = makeCcWorkload(testConfig());

  double BestPerfAlpha = -1.0, BestPerfSeconds = 1e30;
  double BestEnergyAlpha = -1.0, BestEnergyJoules = 1e30;
  for (double Alpha = 0.0; Alpha <= 1.0 + 1e-9; Alpha += 0.1) {
    SessionReport R =
        Session.runFixedAlpha(Cc.Trace, std::min(Alpha, 1.0),
                              Metric::energy());
    if (R.Seconds < BestPerfSeconds) {
      BestPerfSeconds = R.Seconds;
      BestPerfAlpha = Alpha;
    }
    if (R.Joules < BestEnergyJoules) {
      BestEnergyJoules = R.Joules;
      BestEnergyAlpha = Alpha;
    }
  }
  EXPECT_GT(BestPerfAlpha, 0.05);
  EXPECT_LT(BestPerfAlpha, 0.95);
  EXPECT_GE(BestEnergyAlpha, BestPerfAlpha);
}

TEST(Integration, DesktopEnergyGpuNearOraclePerfWorse) {
  // Fig. 10's ordering: GPU-alone close to Oracle on energy; PERF
  // clearly worse than GPU-alone.
  PlatformSpec Spec = haswellDesktop();
  ExecutionSession Session(Spec);
  Workload Mm = *findWorkload(desktopSuite(testConfig()), "MM");
  Metric Objective = Metric::energy();
  SessionReport Oracle = Session.runOracle(Mm.Trace, Objective);
  SessionReport Gpu = Session.runGpuOnly(Mm.Trace, Objective);
  SessionReport Perf = Session.runPerf(Mm.Trace, Objective);
  EXPECT_GT(Oracle.MetricValue / Gpu.MetricValue, 0.85);
  EXPECT_LT(Oracle.MetricValue / Perf.MetricValue,
            Oracle.MetricValue / Gpu.MetricValue + 1e-9);
}

TEST(Integration, EasBeatsSingleDeviceOnDesktopEdp) {
  PlatformSpec Spec = haswellDesktop();
  ExecutionSession Session(Spec);
  // Full-size BS invocations (64K options); profiling on invocations
  // barely above GPU_PROFILE_SIZE is legitimately noisy.
  WorkloadConfig Config;
  Config.Scale = 1.0;
  Workload Bs = *findWorkload(desktopSuite(Config), "BS");
  // Trim the trace for test speed; 2000 identical invocations add
  // nothing at unit-test granularity.
  Bs.Trace.resize(40);
  Metric Objective = Metric::edp();
  SessionReport Eas = Session.runEas(Bs.Trace, curvesFor(Spec), Objective);
  SessionReport Cpu = Session.runCpuOnly(Bs.Trace, Objective);
  EXPECT_LT(Eas.MetricValue, Cpu.MetricValue);
}

TEST(Integration, TabletGpuAloneIsNotEnergyOptimal) {
  // Fig. 12: on the Bay Trail, GPU-alone loses to the Oracle by a clear
  // margin (its GPU burns more power than the CPU).
  PlatformSpec Spec = bayTrailTablet();
  ExecutionSession Session(Spec);
  WorkloadConfig Config = testConfig();
  Workload Mm = *findWorkload(tabletSuite(Config), "MM");
  Metric Objective = Metric::energy();
  SessionReport Oracle = Session.runOracle(Mm.Trace, Objective);
  SessionReport Gpu = Session.runGpuOnly(Mm.Trace, Objective);
  EXPECT_LT(Oracle.MetricValue, Gpu.MetricValue);
}

TEST(Integration, EasWithinBandOfOracleAcrossMetrics) {
  PlatformSpec Spec = haswellDesktop();
  ExecutionSession Session(Spec);
  Workload Nb = *findWorkload(desktopSuite(testConfig()), "NB");
  Nb.Trace.resize(20);
  for (const Metric &Objective : {Metric::energy(), Metric::edp()}) {
    SessionReport Oracle = Session.runOracle(Nb.Trace, Objective);
    SessionReport Eas =
        Session.runEas(Nb.Trace, curvesFor(Spec), Objective);
    double Efficiency = Oracle.MetricValue / Eas.MetricValue;
    EXPECT_GT(Efficiency, 0.6)
        << "metric " << Objective.name() << " efficiency " << Efficiency;
    EXPECT_LE(Efficiency, 1.0 + 1e-9);
  }
}

TEST(Integration, SessionReportsAreInternallyConsistent) {
  PlatformSpec Spec = haswellDesktop();
  ExecutionSession Session(Spec);
  Workload Sm = *findWorkload(desktopSuite(testConfig()), "SM");
  Sm.Trace.resize(10);
  Metric Objective = Metric::edp();
  SessionReport R = Session.runEas(Sm.Trace, curvesFor(Spec), Objective);
  EXPECT_EQ(R.Invocations, 10u);
  EXPECT_GT(R.Seconds, 0.0);
  EXPECT_GT(R.Joules, 0.0);
  EXPECT_NEAR(R.MetricValue, R.Joules * R.Seconds, 1e-6 * R.MetricValue);
  EXPECT_GE(R.MeanAlpha, 0.0);
  EXPECT_LE(R.MeanAlpha, 1.0);
  EXPECT_NEAR(R.averageWatts(), R.Joules / R.Seconds, 1e-9);
}

TEST(Integration, CustomMetricIsHonored) {
  // An ED^2-style metric pushes the best alpha at least as far toward
  // performance as plain energy does.
  PlatformSpec Spec = haswellDesktop();
  ExecutionSession Session(Spec);
  Workload Mm = *findWorkload(desktopSuite(testConfig()), "MM");
  SessionReport OracleEnergy =
      Session.runOracle(Mm.Trace, Metric::energy());
  SessionReport OracleEd2 = Session.runOracle(Mm.Trace, Metric::ed2p());
  EXPECT_LE(OracleEd2.Seconds, OracleEnergy.Seconds + 1e-9);
}

TEST(Integration, ReprofilingAdaptsToDriftingKernels) {
  // A kernel whose behaviour flips mid-run (Section 3.1: "for workloads
  // where the same kernel behaves differently over time, we repeat
  // profiling"). The kernel keeps its identity but becomes strongly
  // CPU-biased halfway through; periodic re-profiling should follow the
  // drift while the default sticks with the stale alpha.
  PlatformSpec Spec = haswellDesktop();
  const PowerCurveSet &Curves = curvesFor(Spec);
  Metric Objective = Metric::edp();

  KernelDesc Friendly;
  Friendly.Name = "drifting.kernel";
  Friendly.CpuCyclesPerIter = 1200.0;
  Friendly.GpuCyclesPerIter = 300.0;
  Friendly.BytesPerIter = 8.0;
  Friendly.LoadStoresPerIter = 4.0;
  Friendly.LlcMissRatio = 0.05;
  Friendly.InstrsPerIter = 1300.0;
  Friendly.GpuEfficiency = 0.9;
  Friendly.CpuVectorizable = 0.2;
  Friendly.withAutoId();
  KernelDesc Hostile = Friendly;
  Hostile.GpuEfficiency = 0.01; // Same Id, GPU suddenly terrible.

  InvocationTrace Trace;
  for (int I = 0; I != 12; ++I)
    Trace.push_back({Friendly, 1e6});
  for (int I = 0; I != 12; ++I)
    Trace.push_back({Hostile, 1e6});

  ExecutionSession Session(Spec);
  EasConfig Adaptive;
  Adaptive.ReprofileEveryInvocations = 4;
  SessionReport Static = Session.runEas(Trace, Curves, Objective);
  SessionReport Tracking =
      Session.runEas(Trace, Curves, Objective, Adaptive);
  EXPECT_LT(Tracking.MetricValue, Static.MetricValue)
      << "re-profiling should beat the stale alpha on a drifting kernel";
}

TEST(Integration, ExternalGpuBusySessionStillCompletes) {
  PlatformSpec Spec = haswellDesktop();
  const PowerCurveSet &Curves = curvesFor(Spec);
  SimProcessor Proc(Spec);
  EasScheduler Scheduler(Curves, Metric::edp());
  Scheduler.setExternalGpuBusy(true);
  KernelDesc Kernel =
      findWorkload(desktopSuite(testConfig()), "SM")->Trace.front().Kernel;
  for (int I = 0; I != 5; ++I) {
    auto Outcome = Scheduler.execute(Proc, Kernel, 1e6);
    EXPECT_DOUBLE_EQ(Outcome.AlphaUsed, 0.0);
  }
  EXPECT_DOUBLE_EQ(Proc.gpu().counters().IterationsDone, 0.0);
  EXPECT_NEAR(Proc.cpu().counters().IterationsDone, 5e6, 1.0);
}

TEST(Integration, CurveCacheRoundTripPreservesEasDecisions) {
  // The deployment flow: characterize once, serialize, reload in another
  // process — decisions must be identical.
  PlatformSpec Spec = bayTrailTablet();
  PowerCurveSet Fresh = Characterizer(Spec).characterize();
  auto Reloaded = PowerCurveSet::deserialize(Fresh.serialize());
  ASSERT_TRUE(Reloaded.has_value());

  Workload Mm = *findWorkload(tabletSuite(testConfig()), "MM");
  ExecutionSession Session(Spec);
  SessionReport A = Session.runEas(Mm.Trace, Fresh, Metric::edp());
  SessionReport B = Session.runEas(Mm.Trace, *Reloaded, Metric::edp());
  EXPECT_DOUBLE_EQ(A.MeanAlpha, B.MeanAlpha);
  EXPECT_DOUBLE_EQ(A.Joules, B.Joules);
  EXPECT_DOUBLE_EQ(A.Seconds, B.Seconds);
}
