//===-- tests/CrashRecoveryTest.cpp - WAL + kill -9 recovery --------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-consistency coverage for table G (DESIGN.md §13), in four
/// layers:
///
///   1. journal format: CRC-framed encode/scan round-trips, torn-tail
///      truncation, header rejection, order-exact replay semantics;
///   2. recovery: snapshot + journal composition, the epoch stale-skip
///      that prevents double-apply, outcome classification, idempotent
///      re-recovery;
///   3. corruption matrix: the snapshot and journal parsers fed every
///      single-byte truncation and every single-bit flip of a seeded
///      corpus, plus random multi-fault rounds — each must degrade to a
///      cold table or a truncated replay, never crash;
///   4. the fork harness: a child process armed to _exit() at each
///      declared crash point (and one killed with SIGKILL mid-load);
///      the parent re-recovers and asserts the invariants — recovered
///      state contains everything durable before the crash, nothing
///      the crash could not have persisted, and recovery of the
///      recovered state is a fixpoint.
///
//===----------------------------------------------------------------------===//

#include "ecas/core/EasScheduler.h"
#include "ecas/core/HistoryJournal.h"
#include "ecas/core/HistorySnapshot.h"
#include "ecas/core/KernelHistory.h"
#include "ecas/hw/Presets.h"
#include "ecas/obs/MetricNames.h"
#include "ecas/power/Characterizer.h"
#include "ecas/support/AtomicFile.h"
#include "ecas/support/CrashPoint.h"
#include "ecas/support/Crc32.h"
#include "ecas/support/Random.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace ecas;

namespace {

/// Scratch snapshot + journal pair, cleaned up on destruction.
class ScratchPair {
public:
  explicit ScratchPair(const std::string &Name)
      : Snap(::testing::TempDir() + "ecas-cr-" + Name + ".tblg"),
        Wal(Snap + ".wal") {
    remove();
  }
  ~ScratchPair() { remove(); }
  const std::string &snap() const { return Snap; }
  const std::string &wal() const { return Wal; }

private:
  void remove() {
    std::remove(Snap.c_str());
    std::remove((Snap + ".tmp").c_str());
    std::remove(Wal.c_str());
    std::remove((Wal + ".tmp").c_str());
  }
  std::string Snap;
  std::string Wal;
};

std::string readFile(const std::string &Path) {
  std::ifstream File(Path, std::ios::binary);
  EXPECT_TRUE(File.good()) << Path;
  return std::string(std::istreambuf_iterator<char>(File),
                     std::istreambuf_iterator<char>());
}

void writeRaw(const std::string &Path, const std::string &Bytes) {
  std::ofstream File(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(File.good()) << Path;
  File.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

/// The base table every recovery test starts from: keys 7, 11, 9001
/// with invocation counts 5, 1, 0.
void populateBase(KernelHistory &History) {
  History.update(7, [](KernelRecord &Rec) {
    Rec.Alpha.addSample(0.7, 1.0e6);
    Rec.Class = WorkloadClass::fromIndex(3);
    Rec.Confident = true;
    Rec.Sample.CpuThroughput = 1.25e8;
    Rec.Sample.GpuThroughput = 4.5e8;
    Rec.Sample.CpuIterations = 6.0e5;
    Rec.Sample.GpuIterations = 1.3e6;
  });
  for (int I = 0; I != 5; ++I)
    History.bumpInvocations(7);
  History.update(11, [](KernelRecord &Rec) {
    Rec.CpuOnly = true;
    Rec.Class = WorkloadClass::fromIndex(1);
  });
  History.bumpInvocations(11);
  History.bumpQuarantinedRuns(11);
  History.update(9001, [](KernelRecord &Rec) {
    Rec.Alpha.addSample(1.0 / 3.0, 123456.789);
    Rec.Sample.GpuHung = true;
  });
}

/// A delta with every field in play, for exact round-trip checks.
HistoryDeltaRecord richDelta() {
  HistoryDeltaRecord Rec;
  Rec.Key = 0xfeedbeef12345678ULL;
  Rec.InvocationsDelta = 3;
  Rec.QuarantinedDelta = 1;
  ProfileSample S;
  S.CpuThroughput = 2.5e8;
  S.GpuThroughput = 7.0e8;
  S.CpuIterations = 4.0e5;
  S.GpuIterations = 1.1e6;
  S.ElapsedSeconds = 3.25e-3;
  S.CpuBusySeconds = 2.75e-3;
  S.GpuBusySeconds = 1.5e-3;
  S.MissPerLoadStore = 0.21;
  S.InstructionsRetired = 6.5e6;
  S.GpuLaunchFailed = true;
  Rec.Samples.push_back(S);
  S.GpuLaunchFailed = false;
  S.GpuHung = true;
  Rec.Samples.push_back(S);
  Rec.BecameConfident = true;
  Rec.HasAlphaSample = true;
  Rec.AlphaValue = 0.625;
  Rec.AlphaWeight = 1.5e6;
  Rec.HasClass = true;
  Rec.ClassIndex = 5;
  Rec.HasPState = true;
  Rec.PState = 3;
  return Rec;
}

void putLe32(std::string &Out, uint32_t V) {
  for (int B = 0; B != 4; ++B)
    Out.push_back(static_cast<char>((V >> (8 * B)) & 0xff));
}

/// Re-frames \p Payload the way encodeDeltaFrame does (u32 length, u32
/// payload CRC, payload) — for hand-built prior-version records.
void frameRaw(std::string &Out, const std::string &Payload) {
  putLe32(Out, static_cast<uint32_t>(Payload.size()));
  putLe32(Out, crc32(Payload.data(), Payload.size()));
  Out += Payload;
}

/// A journal header as a v1 writer emitted it: same layout, version 1.
std::string encodeV1Header(uint64_t Epoch) {
  std::string Out = encodeJournalHeader(Epoch);
  Out[8] = 1;     // u32 LE version
  Out.resize(20); // drop the stale header CRC and restamp
  putLe32(Out, crc32(Out.data() + 8, 12));
  return Out;
}

void expectSameEntries(const KernelHistory &A, const KernelHistory &B) {
  auto Ea = A.entries();
  auto Eb = B.entries();
  ASSERT_EQ(Ea.size(), Eb.size());
  for (size_t I = 0; I != Ea.size(); ++I) {
    SCOPED_TRACE("kernel " + std::to_string(Ea[I].first));
    EXPECT_EQ(Ea[I].first, Eb[I].first);
    const KernelRecord &Ra = Ea[I].second;
    const KernelRecord &Rb = Eb[I].second;
    EXPECT_EQ(Ra.Alpha.weightedSum(), Rb.Alpha.weightedSum());
    EXPECT_EQ(Ra.Alpha.totalWeight(), Rb.Alpha.totalWeight());
    EXPECT_EQ(Ra.Class.index(), Rb.Class.index());
    EXPECT_EQ(Ra.CpuOnly, Rb.CpuOnly);
    EXPECT_EQ(Ra.Confident, Rb.Confident);
    EXPECT_EQ(Ra.Invocations, Rb.Invocations);
    EXPECT_EQ(Ra.QuarantinedRuns, Rb.QuarantinedRuns);
    EXPECT_EQ(Ra.Sample.CpuThroughput, Rb.Sample.CpuThroughput);
    EXPECT_EQ(Ra.Sample.GpuIterations, Rb.Sample.GpuIterations);
    EXPECT_EQ(Ra.Sample.GpuLaunchFailed, Rb.Sample.GpuLaunchFailed);
    EXPECT_EQ(Ra.Sample.GpuHung, Rb.Sample.GpuHung);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// 1. Journal format
//===----------------------------------------------------------------------===//

TEST(JournalFormat, HeaderRoundTrip) {
  std::string Bytes = encodeJournalHeader(7);
  EXPECT_EQ(Bytes.size(), 24u);
  JournalScan Scan = scanJournal(Bytes);
  EXPECT_TRUE(Scan.HeaderValid);
  EXPECT_EQ(Scan.Epoch, 7u);
  EXPECT_TRUE(Scan.Records.empty());
  EXPECT_FALSE(Scan.Torn);
  EXPECT_EQ(Scan.ValidBytes, Bytes.size());
}

TEST(JournalFormat, FrameRoundTripAllFields) {
  HistoryDeltaRecord Rich = richDelta();
  HistoryDeltaRecord Bare;
  Bare.Key = 42;
  Bare.InvocationsDelta = 1;
  Bare.SetCpuOnly = true;

  std::string Bytes = encodeJournalHeader(3);
  encodeDeltaFrame(Bytes, Rich);
  encodeDeltaFrame(Bytes, Bare);

  JournalScan Scan = scanJournal(Bytes);
  ASSERT_TRUE(Scan.HeaderValid);
  EXPECT_EQ(Scan.Version, HistoryJournalVersion);
  EXPECT_EQ(Scan.Epoch, 3u);
  EXPECT_FALSE(Scan.Torn);
  ASSERT_EQ(Scan.Records.size(), 2u);

  const HistoryDeltaRecord &R = Scan.Records[0];
  EXPECT_EQ(R.Key, Rich.Key);
  EXPECT_EQ(R.InvocationsDelta, Rich.InvocationsDelta);
  EXPECT_EQ(R.QuarantinedDelta, Rich.QuarantinedDelta);
  EXPECT_EQ(R.BecameConfident, Rich.BecameConfident);
  EXPECT_EQ(R.HasAlphaSample, Rich.HasAlphaSample);
  EXPECT_EQ(R.AlphaValue, Rich.AlphaValue);
  EXPECT_EQ(R.AlphaWeight, Rich.AlphaWeight);
  EXPECT_EQ(R.HasClass, Rich.HasClass);
  EXPECT_EQ(R.ClassIndex, Rich.ClassIndex);
  EXPECT_EQ(R.HasPState, Rich.HasPState);
  EXPECT_EQ(R.PState, Rich.PState);
  ASSERT_EQ(R.Samples.size(), 2u);
  EXPECT_EQ(R.Samples[0].CpuThroughput, Rich.Samples[0].CpuThroughput);
  EXPECT_EQ(R.Samples[0].InstructionsRetired,
            Rich.Samples[0].InstructionsRetired);
  EXPECT_TRUE(R.Samples[0].GpuLaunchFailed);
  EXPECT_FALSE(R.Samples[0].GpuHung);
  EXPECT_TRUE(R.Samples[1].GpuHung);

  EXPECT_EQ(Scan.Records[1].Key, 42u);
  EXPECT_TRUE(Scan.Records[1].SetCpuOnly);
  EXPECT_TRUE(Scan.Records[1].Samples.empty());
}

TEST(JournalFormat, TornTailTruncatesAtFirstBadFrame) {
  HistoryDeltaRecord Rec;
  Rec.Key = 9;
  Rec.InvocationsDelta = 1;

  std::string Bytes = encodeJournalHeader(1);
  encodeDeltaFrame(Bytes, Rec);
  encodeDeltaFrame(Bytes, Rec);
  size_t TwoFrames = Bytes.size();
  encodeDeltaFrame(Bytes, Rec);

  // Chop mid-third-frame: the valid prefix is exactly two frames.
  std::string Torn = Bytes.substr(0, TwoFrames + 5);
  JournalScan Scan = scanJournal(Torn);
  ASSERT_TRUE(Scan.HeaderValid);
  EXPECT_TRUE(Scan.Torn);
  EXPECT_EQ(Scan.Records.size(), 2u);
  EXPECT_EQ(Scan.TruncatedRecords, 1u);
  EXPECT_EQ(Scan.ValidBytes, TwoFrames);

  // Chop inside the frame header (not even the length survives).
  Scan = scanJournal(Bytes.substr(0, TwoFrames + 3));
  EXPECT_TRUE(Scan.Torn);
  EXPECT_EQ(Scan.Records.size(), 2u);
  EXPECT_EQ(Scan.ValidBytes, TwoFrames);
}

TEST(JournalFormat, BitFlipStopsScanAtCorruptFrame) {
  HistoryDeltaRecord Rec;
  Rec.Key = 9;
  Rec.InvocationsDelta = 1;
  std::string Bytes = encodeJournalHeader(1);
  encodeDeltaFrame(Bytes, Rec);
  size_t OneFrame = Bytes.size();
  encodeDeltaFrame(Bytes, Rec);

  Bytes[OneFrame + 10] = static_cast<char>(Bytes[OneFrame + 10] ^ 0x40);
  JournalScan Scan = scanJournal(Bytes);
  ASSERT_TRUE(Scan.HeaderValid);
  EXPECT_TRUE(Scan.Torn);
  EXPECT_EQ(Scan.Records.size(), 1u);
  EXPECT_EQ(Scan.ValidBytes, OneFrame);
  EXPECT_FALSE(Scan.Error.ok());
}

TEST(JournalFormat, HeaderCorruptionRejected) {
  std::string Good = encodeJournalHeader(5);

  std::string BadMagic = Good;
  BadMagic[0] = 'X';
  EXPECT_FALSE(scanJournal(BadMagic).HeaderValid);

  std::string BadVersion = Good;
  BadVersion[8] = static_cast<char>(HistoryJournalVersion + 1);
  EXPECT_FALSE(scanJournal(BadVersion).HeaderValid);

  std::string BadCrc = Good;
  BadCrc[21] = static_cast<char>(BadCrc[21] ^ 0x01);
  EXPECT_FALSE(scanJournal(BadCrc).HeaderValid);

  EXPECT_FALSE(scanJournal(Good.substr(0, 23)).HeaderValid);
  EXPECT_FALSE(scanJournal("").HeaderValid);
}

// A journal written before the DVFS axis (v1: 39-byte fixed records, no
// P-state flag) must still scan and replay, with every delta decoding
// to HasPState = false / P-state 0. The v1 record is assembled by hand
// from a v2 frame: strip the 4-byte P-state field that v2 inserted
// before the sample count.
TEST(JournalFormat, V1JournalReplaysWithPStateZero) {
  HistoryDeltaRecord Rec;
  Rec.Key = 7;
  Rec.InvocationsDelta = 2;
  Rec.HasAlphaSample = true;
  Rec.AlphaValue = 0.4;
  Rec.AlphaWeight = 5e5;
  std::string V2Frame;
  encodeDeltaFrame(V2Frame, Rec);
  constexpr size_t FrameHeader = 8, PStateOff = 37;
  std::string Payload = V2Frame.substr(FrameHeader);
  Payload.erase(PStateOff, 4);

  std::string Bytes = encodeV1Header(5);
  frameRaw(Bytes, Payload);
  frameRaw(Bytes, Payload);

  JournalScan Scan = scanJournal(Bytes);
  ASSERT_TRUE(Scan.HeaderValid) << Scan.Error.toString();
  EXPECT_EQ(Scan.Version, 1u);
  EXPECT_EQ(Scan.Epoch, 5u);
  EXPECT_FALSE(Scan.Torn);
  ASSERT_EQ(Scan.Records.size(), 2u);
  for (const HistoryDeltaRecord &R : Scan.Records) {
    EXPECT_EQ(R.Key, 7u);
    EXPECT_FALSE(R.HasPState);
    EXPECT_EQ(R.PState, 0u);
    EXPECT_EQ(R.AlphaValue, 0.4);
  }

  KernelHistory History;
  for (const HistoryDeltaRecord &R : Scan.Records)
    applyDeltaRecord(History, R);
  KernelRecord Replayed;
  ASSERT_TRUE(History.lookup(7, Replayed));
  EXPECT_EQ(Replayed.PState, 0u);
  EXPECT_EQ(Replayed.Invocations, 4u);
}

// A flag byte claiming a P-state on a v1 record is unknown to v1 and
// must stop the scan, exactly like any other unknown flag bit.
TEST(JournalFormat, V1RecordRejectsPStateFlag) {
  HistoryDeltaRecord Rec;
  Rec.Key = 7;
  Rec.HasPState = true;
  Rec.PState = 1;
  std::string V2Frame;
  encodeDeltaFrame(V2Frame, Rec);
  std::string Payload = V2Frame.substr(8);
  Payload.erase(37, 4); // v1 layout, but the flag byte still says pstate

  std::string Bytes = encodeV1Header(1);
  frameRaw(Bytes, Payload);
  JournalScan Scan = scanJournal(Bytes);
  ASSERT_TRUE(Scan.HeaderValid);
  EXPECT_TRUE(Scan.Torn);
  EXPECT_TRUE(Scan.Records.empty());
}

// An in-range CRC-valid frame whose P-state index exceeds the ladder
// bound is semantic corruption: the scan must degrade, not replay a
// record that would later index past the P-state arrays.
TEST(JournalFormat, OutOfRangePStateStopsScan) {
  HistoryDeltaRecord Rec;
  Rec.Key = 7;
  Rec.HasPState = true;
  Rec.PState = 2;
  std::string Frame;
  encodeDeltaFrame(Frame, Rec);
  std::string Payload = Frame.substr(8);
  Payload[37] = 8; // kMaxPStates: one past the largest legal index
  std::string Bytes = encodeJournalHeader(1);
  frameRaw(Bytes, Payload);

  JournalScan Scan = scanJournal(Bytes);
  ASSERT_TRUE(Scan.HeaderValid);
  EXPECT_TRUE(Scan.Torn);
  EXPECT_TRUE(Scan.Records.empty());
}

TEST(JournalFormat, BecameConfidentResetsAlphaBeforeAdding) {
  KernelHistory History;
  History.update(77, [](KernelRecord &Rec) {
    Rec.Alpha.addSample(0.2, 10.0); // provisional pre-confident alpha
  });

  HistoryDeltaRecord Rec;
  Rec.Key = 77;
  Rec.BecameConfident = true;
  Rec.HasAlphaSample = true;
  Rec.AlphaValue = 0.6;
  Rec.AlphaWeight = 100.0;
  applyDeltaRecord(History, Rec);

  // The confident transition discards the provisional accumulator: the
  // replayed alpha is exactly the one confident sample, as on the live
  // merge path.
  auto Entry = History.find(77);
  ASSERT_TRUE(Entry.has_value());
  EXPECT_TRUE(Entry->Confident);
  EXPECT_EQ(Entry->Alpha.weightedSum(), 0.6 * 100.0);
  EXPECT_EQ(Entry->Alpha.totalWeight(), 100.0);
}

//===----------------------------------------------------------------------===//
// 2. Recovery
//===----------------------------------------------------------------------===//

TEST(Recovery, ColdStartWhenNothingExists) {
  ScratchPair Files("cold");
  KernelHistory History;
  RecoveryReport Report =
      recoverKernelHistory(History, Files.snap(), Files.wal());
  EXPECT_EQ(Report.Outcome, RecoveryOutcome::Cold);
  EXPECT_EQ(Report.SnapshotRecords, 0u);
  EXPECT_EQ(Report.ReplayedRecords, 0u);
  EXPECT_EQ(History.size(), 0u);
  EXPECT_GE(Report.Seconds, 0.0);

  // Compaction initialised both files; the journal opens at the
  // reported epoch.
  JournalOptions Opts;
  Opts.Path = Files.wal();
  auto Journal = HistoryJournal::open(Opts, Report.Epoch);
  ASSERT_TRUE(Journal.ok()) << Journal.status().toString();
}

TEST(Recovery, ReplaysJournalOntoSnapshotThenCompacts) {
  ScratchPair Files("replay");
  KernelHistory Base;
  populateBase(Base);
  ASSERT_TRUE(saveKernelHistory(Base, Files.snap(), /*Epoch=*/3).ok());

  std::string Wal = encodeJournalHeader(3);
  HistoryDeltaRecord Bump;
  Bump.Key = 7;
  Bump.InvocationsDelta = 2;
  encodeDeltaFrame(Wal, Bump);
  HistoryDeltaRecord Fresh;
  Fresh.Key = 555;
  Fresh.InvocationsDelta = 3;
  Fresh.SetCpuOnly = true;
  encodeDeltaFrame(Wal, Fresh);
  writeRaw(Files.wal(), Wal);

  KernelHistory History;
  RecoveryReport Report =
      recoverKernelHistory(History, Files.snap(), Files.wal());
  EXPECT_EQ(Report.Outcome, RecoveryOutcome::Replayed);
  EXPECT_EQ(Report.SnapshotRecords, 3u);
  EXPECT_EQ(Report.ReplayedRecords, 2u);
  EXPECT_EQ(Report.TruncatedRecords, 0u);
  EXPECT_GT(Report.Epoch, 3u);
  EXPECT_TRUE(Report.SnapshotStatus.ok());
  EXPECT_TRUE(Report.JournalStatus.ok());
  EXPECT_TRUE(Report.CompactStatus.ok());

  EXPECT_EQ(History.size(), 4u);
  EXPECT_EQ(History.find(7)->Invocations, 7u);
  EXPECT_EQ(History.find(555)->Invocations, 3u);
  EXPECT_TRUE(History.find(555)->CpuOnly);

  // Recovery of the recovered state is a fixpoint: Clean, identical
  // entries, no double-apply of the compacted journal.
  KernelHistory Again;
  RecoveryReport Second =
      recoverKernelHistory(Again, Files.snap(), Files.wal());
  EXPECT_EQ(Second.Outcome, RecoveryOutcome::Clean);
  EXPECT_EQ(Second.ReplayedRecords, 0u);
  expectSameEntries(History, Again);
}

TEST(Recovery, StaleJournalIsSkippedNotDoubleApplied) {
  ScratchPair Files("stale");
  KernelHistory Base;
  populateBase(Base);
  // Snapshot at epoch 5; the journal below is epoch 4 — exactly what a
  // crash between compaction's snapshot write and journal reset leaves.
  ASSERT_TRUE(saveKernelHistory(Base, Files.snap(), /*Epoch=*/5).ok());

  std::string Wal = encodeJournalHeader(4);
  HistoryDeltaRecord Bump;
  Bump.Key = 7;
  Bump.InvocationsDelta = 100;
  encodeDeltaFrame(Wal, Bump);
  writeRaw(Files.wal(), Wal);

  KernelHistory History;
  RecoveryReport Report =
      recoverKernelHistory(History, Files.snap(), Files.wal());
  EXPECT_EQ(Report.Outcome, RecoveryOutcome::Clean);
  EXPECT_TRUE(Report.StaleJournalSkipped);
  EXPECT_EQ(Report.ReplayedRecords, 0u);
  // The 100-invocation bump was already inside the epoch-5 snapshot by
  // definition; applying it again would corrupt the counters.
  EXPECT_EQ(History.find(7)->Invocations, 5u);
}

TEST(Recovery, TornJournalTailTruncates) {
  ScratchPair Files("torn");
  KernelHistory Base;
  populateBase(Base);
  ASSERT_TRUE(saveKernelHistory(Base, Files.snap(), /*Epoch=*/1).ok());

  std::string Wal = encodeJournalHeader(1);
  HistoryDeltaRecord Bump;
  Bump.Key = 7;
  Bump.InvocationsDelta = 1;
  encodeDeltaFrame(Wal, Bump);
  size_t Valid = Wal.size();
  encodeDeltaFrame(Wal, Bump);
  writeRaw(Files.wal(), Wal.substr(0, Valid + 6)); // torn second frame

  KernelHistory History;
  RecoveryReport Report =
      recoverKernelHistory(History, Files.snap(), Files.wal());
  EXPECT_EQ(Report.Outcome, RecoveryOutcome::Truncated);
  EXPECT_EQ(Report.ReplayedRecords, 1u);
  EXPECT_EQ(Report.TruncatedRecords, 1u);
  EXPECT_EQ(History.find(7)->Invocations, 6u);

  // After compaction the tear is gone for good.
  KernelHistory Again;
  EXPECT_EQ(recoverKernelHistory(Again, Files.snap(), Files.wal()).Outcome,
            RecoveryOutcome::Clean);
  expectSameEntries(History, Again);
}

TEST(Recovery, CorruptSnapshotStillReplaysJournal) {
  ScratchPair Files("corrupt-snap");
  writeRaw(Files.snap(), "not a snapshot at all ......................");

  std::string Wal = encodeJournalHeader(0);
  HistoryDeltaRecord Fresh;
  Fresh.Key = 321;
  Fresh.InvocationsDelta = 2;
  encodeDeltaFrame(Wal, Fresh);
  writeRaw(Files.wal(), Wal);

  KernelHistory History;
  RecoveryReport Report =
      recoverKernelHistory(History, Files.snap(), Files.wal());
  // Data was lost (the snapshot) — Truncated, not Clean — but the
  // journal's records still survive onto the cold table.
  EXPECT_EQ(Report.Outcome, RecoveryOutcome::Truncated);
  EXPECT_FALSE(Report.SnapshotStatus.ok());
  EXPECT_EQ(Report.ReplayedRecords, 1u);
  EXPECT_EQ(History.size(), 1u);
  EXPECT_EQ(History.find(321)->Invocations, 2u);
}

//===----------------------------------------------------------------------===//
// 3. The append side
//===----------------------------------------------------------------------===//

TEST(Journal, OpenEnqueueFlushScan) {
  ScratchPair Files("append");
  JournalOptions Opts;
  Opts.Path = Files.wal();
  auto Journal = HistoryJournal::open(Opts, 2);
  ASSERT_TRUE(Journal.ok()) << Journal.status().toString();
  EXPECT_EQ((*Journal)->epoch(), 2u);

  (*Journal)->enqueue(richDelta());
  HistoryDeltaRecord Bump;
  Bump.Key = 5;
  Bump.InvocationsDelta = 1;
  (*Journal)->enqueue(Bump);
  ASSERT_TRUE((*Journal)->flush().ok());

  HistoryJournal::Stats Stats = (*Journal)->stats();
  EXPECT_EQ(Stats.Appends, 2u);
  EXPECT_EQ(Stats.Flushes, 1u);
  EXPECT_GT(Stats.AppendedBytes, 0u);

  JournalScan Scan = scanJournal(readFile(Files.wal()));
  ASSERT_TRUE(Scan.HeaderValid);
  EXPECT_EQ(Scan.Epoch, 2u);
  EXPECT_FALSE(Scan.Torn);
  ASSERT_EQ(Scan.Records.size(), 2u);
  EXPECT_EQ(Scan.Records[1].Key, 5u);

  // Empty records are dropped at the door.
  (*Journal)->enqueue(HistoryDeltaRecord{});
  EXPECT_EQ((*Journal)->stats().Appends, 2u);
}

TEST(Journal, GroupCommitHoldsUntilThreshold) {
  ScratchPair Files("group-commit");
  JournalOptions Opts;
  Opts.Path = Files.wal();
  Opts.GroupCommitRecords = 2;
  auto Journal = HistoryJournal::open(Opts, 0);
  ASSERT_TRUE(Journal.ok());

  HistoryDeltaRecord Bump;
  Bump.Key = 1;
  Bump.InvocationsDelta = 1;
  (*Journal)->enqueue(Bump);
  ASSERT_TRUE((*Journal)->maybeFlush().ok());
  EXPECT_EQ(readFile(Files.wal()).size(), 24u); // still header-only

  (*Journal)->enqueue(Bump);
  ASSERT_TRUE((*Journal)->maybeFlush().ok());
  EXPECT_EQ(scanJournal(readFile(Files.wal())).Records.size(), 2u);
}

TEST(Journal, OpenRejectsEpochMismatch) {
  ScratchPair Files("epoch-mismatch");
  writeRaw(Files.wal(), encodeJournalHeader(3));
  JournalOptions Opts;
  Opts.Path = Files.wal();
  auto Journal = HistoryJournal::open(Opts, 4);
  ASSERT_FALSE(Journal.ok());
  EXPECT_EQ(Journal.status().code(), ErrCode::VersionMismatch);
}

// open() only appends current-version frames, so a journal left by a
// prior release must be rejected — recovery (scanJournal + snapshot
// rewrite) is the upgrade path, not in-place mixed-version appends.
TEST(Journal, OpenRejectsPriorVersionJournal) {
  ScratchPair Files("prior-version");
  writeRaw(Files.wal(), encodeV1Header(4));
  JournalOptions Opts;
  Opts.Path = Files.wal();
  auto Journal = HistoryJournal::open(Opts, 4);
  ASSERT_FALSE(Journal.ok());
  EXPECT_EQ(Journal.status().code(), ErrCode::VersionMismatch);
}

TEST(Journal, OpenTruncatesTornTailAndResumesAppending) {
  ScratchPair Files("open-torn");
  std::string Wal = encodeJournalHeader(1);
  HistoryDeltaRecord First;
  First.Key = 10;
  First.InvocationsDelta = 1;
  encodeDeltaFrame(Wal, First);
  size_t Valid = Wal.size();
  encodeDeltaFrame(Wal, First);
  writeRaw(Files.wal(), Wal.substr(0, Valid + 4)); // torn tail

  JournalOptions Opts;
  Opts.Path = Files.wal();
  auto Journal = HistoryJournal::open(Opts, 1);
  ASSERT_TRUE(Journal.ok()) << Journal.status().toString();

  HistoryDeltaRecord Second;
  Second.Key = 20;
  Second.InvocationsDelta = 1;
  (*Journal)->enqueue(Second);
  ASSERT_TRUE((*Journal)->flush().ok());

  // The tear was truncated away before the append, so the file scans
  // clean end to end: the intact first record, then the new one.
  JournalScan Scan = scanJournal(readFile(Files.wal()));
  EXPECT_FALSE(Scan.Torn);
  ASSERT_EQ(Scan.Records.size(), 2u);
  EXPECT_EQ(Scan.Records[0].Key, 10u);
  EXPECT_EQ(Scan.Records[1].Key, 20u);
}

TEST(Journal, ResetRewritesHeaderAndDropsPending) {
  ScratchPair Files("reset");
  JournalOptions Opts;
  Opts.Path = Files.wal();
  Opts.GroupCommitRecords = 1000; // never auto-flush
  auto Journal = HistoryJournal::open(Opts, 1);
  ASSERT_TRUE(Journal.ok());

  HistoryDeltaRecord Bump;
  Bump.Key = 1;
  Bump.InvocationsDelta = 1;
  (*Journal)->enqueue(Bump);
  ASSERT_TRUE((*Journal)->reset(9).ok());
  EXPECT_EQ((*Journal)->epoch(), 9u);

  JournalScan Scan = scanJournal(readFile(Files.wal()));
  EXPECT_TRUE(Scan.HeaderValid);
  EXPECT_EQ(Scan.Epoch, 9u);
  EXPECT_TRUE(Scan.Records.empty()); // pending record dropped with the epoch

  // Appends keep working after the reset.
  (*Journal)->enqueue(Bump);
  ASSERT_TRUE((*Journal)->flush().ok());
  EXPECT_EQ(scanJournal(readFile(Files.wal())).Records.size(), 1u);
}

//===----------------------------------------------------------------------===//
// 4. Scheduler integration
//===----------------------------------------------------------------------===//

namespace {

const PowerCurveSet &desktopCurves() {
  static PowerCurveSet Curves = Characterizer(haswellDesktop()).characterize();
  return Curves;
}

KernelDesc namedKernel(const std::string &Name) {
  KernelDesc Kernel;
  Kernel.Name = Name;
  return Kernel.withAutoId();
}

} // namespace

TEST(SchedulerJournal, KillWithoutShutdownLosesNothingFlushed) {
  ScratchPair Files("no-shutdown");
  ScratchPair Copy("no-shutdown-copy");

  EasConfig Config;
  Config.HistoryFile = Files.snap();
  Config.Journal.Enabled = true;
  Config.Journal.GroupCommitRecords = 1; // every merge commits

  std::vector<std::pair<uint64_t, KernelRecord>> Live;
  {
    EasScheduler Scheduler(desktopCurves(), Metric::edp(), Config);
    ASSERT_TRUE(Scheduler.journalStatus().ok())
        << Scheduler.journalStatus().toString();
    EXPECT_TRUE(Scheduler.journaling());
    EXPECT_EQ(Scheduler.journalPath(), Files.wal());
    EXPECT_EQ(Scheduler.recoveryReport().Outcome, RecoveryOutcome::Cold);

    SimProcessor Proc(haswellDesktop());
    KernelDesc KernelA = namedKernel("wal-a");
    KernelDesc KernelB = namedKernel("wal-b");
    for (int I = 0; I != 6; ++I) {
      Scheduler.execute(Proc, KernelA, 2e6);
      Scheduler.execute(Proc, KernelB, 1e6);
    }
    ASSERT_TRUE(Scheduler.flushJournal().ok());
    EXPECT_GT(Scheduler.journalStats().Appends, 0u);
    Live = Scheduler.history().entries();
    ASSERT_EQ(Live.size(), 2u);

    // Freeze the on-disk state exactly as a kill -9 here would leave
    // it, before the destructor's orderly shutdown compacts it.
    writeRaw(Copy.snap(), readFile(Files.snap()));
    writeRaw(Copy.wal(), readFile(Files.wal()));
  }

  KernelHistory Recovered;
  RecoveryReport Report =
      recoverKernelHistory(Recovered, Copy.snap(), Copy.wal());
  EXPECT_EQ(Report.Outcome, RecoveryOutcome::Replayed);
  auto Entries = Recovered.entries();
  ASSERT_EQ(Entries.size(), Live.size());
  for (size_t I = 0; I != Live.size(); ++I) {
    SCOPED_TRACE("kernel " + std::to_string(Live[I].first));
    EXPECT_EQ(Entries[I].first, Live[I].first);
    // The headline guarantee: with every merge flushed, a kill -9
    // costs nothing — bit-identical alphas and exact counters.
    EXPECT_EQ(Entries[I].second.Alpha.weightedSum(),
              Live[I].second.Alpha.weightedSum());
    EXPECT_EQ(Entries[I].second.Alpha.totalWeight(),
              Live[I].second.Alpha.totalWeight());
    EXPECT_EQ(Entries[I].second.Invocations, Live[I].second.Invocations);
    EXPECT_EQ(Entries[I].second.Confident, Live[I].second.Confident);
  }
}

TEST(SchedulerJournal, MetricsExposeJournalAndRecovery) {
  ScratchPair Files("metrics");
  obs::MetricsRegistry Registry;

  EasConfig Config;
  Config.HistoryFile = Files.snap();
  Config.Journal.Enabled = true;
  Config.Metrics = &Registry;

  EasScheduler Scheduler(desktopCurves(), Metric::edp(), Config);
  SimProcessor Proc(haswellDesktop());
  Scheduler.execute(Proc, namedKernel("metrics-k"), 2e6);
  ASSERT_TRUE(Scheduler.flushJournal().ok());

  obs::MetricsSnapshot Snap = Registry.snapshot();
  EXPECT_GT(Snap.total(obs::names::HistoryJournalAppendsTotal), 0.0);
  EXPECT_GT(Snap.total(obs::names::HistoryJournalBytesTotal), 0.0);
  ASSERT_NE(Snap.find(obs::names::RecoverySeconds), nullptr);
  // Exactly one recovery happened, and it was a cold start.
  EXPECT_EQ(Snap.total(obs::names::HistoryRecoveryOutcome), 1.0);
  const obs::MetricSample *Cold =
      Snap.find(obs::names::HistoryRecoveryOutcome, {{"outcome", "cold"}});
  ASSERT_NE(Cold, nullptr);
  EXPECT_EQ(Cold->Value, 1.0);
}

TEST(SchedulerJournal, ValidationRejectsJournalWithoutHistoryFile) {
  EasConfig Config;
  Config.Journal.Enabled = true; // but no HistoryFile
  EXPECT_FALSE(Config.validate().ok());
  Config.HistoryFile = "/tmp/x.tblg";
  Config.Journal.GroupCommitRecords = 0;
  EXPECT_FALSE(Config.validate().ok());
}

//===----------------------------------------------------------------------===//
// 5. Corruption matrix
//===----------------------------------------------------------------------===//

TEST(CorruptionMatrix, SnapshotRejectsEveryTruncationAndBitFlip) {
  KernelHistory Base;
  populateBase(Base);
  const std::string Bytes = serializeKernelHistory(Base, /*Epoch=*/4);

  // Every proper prefix must be rejected — the parser never guesses at
  // a record boundary.
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    KernelHistory Restored;
    ErrorOr<size_t> Count =
        deserializeKernelHistory(Restored, Bytes.substr(0, Len));
    EXPECT_FALSE(Count.ok()) << "prefix of " << Len << " bytes accepted";
    EXPECT_EQ(Restored.size(), 0u);
  }

  // Every single-bit flip is caught by magic, version, count, or CRC.
  for (size_t Offset = 0; Offset != Bytes.size(); ++Offset)
    for (int Bit = 0; Bit != 8; ++Bit) {
      std::string Flipped = Bytes;
      Flipped[Offset] = static_cast<char>(Flipped[Offset] ^ (1 << Bit));
      KernelHistory Restored;
      ErrorOr<size_t> Count = deserializeKernelHistory(Restored, Flipped);
      EXPECT_FALSE(Count.ok())
          << "bit " << Bit << " at offset " << Offset << " accepted";
    }
}

TEST(CorruptionMatrix, JournalDegradesOnEveryTruncationAndBitFlip) {
  std::string Bytes = encodeJournalHeader(2);
  std::vector<size_t> Boundaries{Bytes.size()};
  HistoryDeltaRecord Bump;
  Bump.Key = 3;
  Bump.InvocationsDelta = 1;
  for (const HistoryDeltaRecord &Rec :
       {richDelta(), Bump, richDelta(), Bump}) {
    encodeDeltaFrame(Bytes, Rec);
    Boundaries.push_back(Bytes.size());
  }
  const size_t FullRecords = Boundaries.size() - 1;

  // Truncation at any offset: records up to the last whole frame
  // survive; a cut mid-frame is a tear, a cut on a boundary is clean.
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    JournalScan Scan = scanJournal(std::string_view(Bytes).substr(0, Len));
    if (Len < 24) {
      EXPECT_FALSE(Scan.HeaderValid) << Len;
      continue;
    }
    ASSERT_TRUE(Scan.HeaderValid) << Len;
    size_t WholeFrames = 0;
    while (WholeFrames + 1 < Boundaries.size() &&
           Boundaries[WholeFrames + 1] <= Len)
      ++WholeFrames;
    EXPECT_EQ(Scan.Records.size(), WholeFrames) << Len;
    EXPECT_EQ(Scan.ValidBytes, Boundaries[WholeFrames]) << Len;
    EXPECT_EQ(Scan.Torn, Len != Boundaries[WholeFrames]) << Len;
  }

  // A single-bit flip anywhere kills at most the frames from the flip
  // onward — and replaying whatever survives must never abort.
  for (size_t Offset = 0; Offset != Bytes.size(); ++Offset)
    for (int Bit = 0; Bit != 8; ++Bit) {
      std::string Flipped = Bytes;
      Flipped[Offset] = static_cast<char>(Flipped[Offset] ^ (1 << Bit));
      JournalScan Scan = scanJournal(Flipped);
      if (Offset < 24) {
        EXPECT_FALSE(Scan.HeaderValid)
            << "bit " << Bit << " at offset " << Offset;
        continue;
      }
      ASSERT_TRUE(Scan.HeaderValid);
      EXPECT_TRUE(Scan.Torn) << "bit " << Bit << " at offset " << Offset;
      EXPECT_LT(Scan.Records.size(), FullRecords);
      KernelHistory History;
      for (const HistoryDeltaRecord &Rec : Scan.Records)
        applyDeltaRecord(History, Rec);
    }
}

TEST(CorruptionMatrix, RandomMultiFaultRoundsNeverCrashRecovery) {
  ScratchPair Files("fuzz");
  KernelHistory Base;
  populateBase(Base);
  const std::string GoodSnap = serializeKernelHistory(Base, /*Epoch=*/1);
  std::string GoodWal = encodeJournalHeader(1);
  for (int I = 0; I != 4; ++I)
    encodeDeltaFrame(GoodWal, richDelta());

  Xoshiro256 Rng(0xc4a5u);
  for (int Round = 0; Round != 120; ++Round) {
    std::string Snap = GoodSnap;
    std::string Wal = GoodWal;
    // 1-4 faults per round, any mix of truncations and flips on either
    // file, including whole-file loss.
    const unsigned Faults = 1 + static_cast<unsigned>(Rng.nextBounded(4));
    for (unsigned F = 0; F != Faults; ++F) {
      std::string &Target = Rng.nextBounded(2) ? Snap : Wal;
      switch (Rng.nextBounded(3)) {
      case 0:
        Target.resize(Rng.nextBounded(Target.size() + 1));
        break;
      case 1:
        if (!Target.empty()) {
          size_t At = Rng.nextBounded(Target.size());
          Target[At] =
              static_cast<char>(Target[At] ^ (1u << Rng.nextBounded(8)));
        }
        break;
      default:
        Target.clear();
        break;
      }
    }
    writeRaw(Files.snap(), Snap);
    writeRaw(Files.wal(), Wal);

    KernelHistory History;
    RecoveryReport Report =
        recoverKernelHistory(History, Files.snap(), Files.wal());
    // The contract: any corruption degrades (cold table or truncated
    // replay); the table never exceeds the uncorrupted world's keys.
    EXPECT_LE(History.size(), 5u) << "round " << Round;
    EXPECT_LE(Report.ReplayedRecords, 4u) << "round " << Round;

    // And whatever recovery produced is a stable fixpoint.
    KernelHistory Again;
    RecoveryReport Second =
        recoverKernelHistory(Again, Files.snap(), Files.wal());
    EXPECT_EQ(Second.Outcome, RecoveryOutcome::Clean) << "round " << Round;
    expectSameEntries(History, Again);
  }
}

//===----------------------------------------------------------------------===//
// 6. The fork harness: die at every declared crash point
//===----------------------------------------------------------------------===//

#ifndef _WIN32

namespace {

/// What the crash-sweep child does after arming one point: a full
/// durability cycle — recover (covers the recovery.* and atomicfile.*
/// points via compaction), then append one more delta and flush it
/// (covers the journal.flush.* points). Never returns.
[[noreturn]] void crashChildWorkload(const char *Point,
                                     const std::string &Snap,
                                     const std::string &Wal) {
  if (Point)
    armCrashPoint(Point);
  KernelHistory History;
  RecoveryReport Report = recoverKernelHistory(History, Snap, Wal);
  JournalOptions Opts;
  Opts.Path = Wal;
  auto Journal = HistoryJournal::open(Opts, Report.Epoch);
  if (!Journal.ok())
    _exit(3);
  HistoryDeltaRecord Extra;
  Extra.Key = 777;
  Extra.InvocationsDelta = 4;
  (*Journal)->enqueue(Extra);
  if (!(*Journal)->flush().ok())
    _exit(4);
  _exit(0);
}

/// Seeds snapshot(1) = the base table and journal(1) = two pending
/// deltas, so the child's recovery has real replay and compaction work
/// for every crash point to land inside.
void seedCrashState(const std::string &Snap, const std::string &Wal) {
  KernelHistory Base;
  populateBase(Base);
  ASSERT_TRUE(saveKernelHistory(Base, Snap, /*Epoch=*/1).ok());
  std::string Bytes = encodeJournalHeader(1);
  HistoryDeltaRecord Bump;
  Bump.Key = 7;
  Bump.InvocationsDelta = 2;
  encodeDeltaFrame(Bytes, Bump);
  HistoryDeltaRecord Fresh;
  Fresh.Key = 555;
  Fresh.InvocationsDelta = 3;
  Fresh.SetCpuOnly = true;
  encodeDeltaFrame(Bytes, Fresh);
  ASSERT_TRUE(writeFileAtomic(Wal, Bytes).ok());
}

int runCrashChild(const char *Point, const std::string &Snap,
                  const std::string &Wal) {
  pid_t Pid = fork();
  if (Pid == 0)
    crashChildWorkload(Point, Snap, Wal); // never returns
  EXPECT_GT(Pid, 0) << "fork failed";
  int WaitStatus = 0;
  EXPECT_EQ(waitpid(Pid, &WaitStatus, 0), Pid);
  return WaitStatus;
}

} // namespace

TEST(CrashHarness, EveryDeclaredPointHoldsRecoveryInvariants) {
  size_t PointCount = 0;
  const char *const *Points = declaredCrashPoints(PointCount);
  ASSERT_EQ(PointCount, 8u);

  // Baseline: the workload completes when nothing is armed, so a clean
  // exit below would mean the armed point was never reached.
  {
    ScratchPair Files("crash-baseline");
    seedCrashState(Files.snap(), Files.wal());
    int WaitStatus = runCrashChild(nullptr, Files.snap(), Files.wal());
    ASSERT_TRUE(WIFEXITED(WaitStatus));
    ASSERT_EQ(WEXITSTATUS(WaitStatus), 0);
  }

  for (size_t I = 0; I != PointCount; ++I) {
    SCOPED_TRACE(Points[I]);
    ScratchPair Files("crash-point");
    seedCrashState(Files.snap(), Files.wal());

    int WaitStatus = runCrashChild(Points[I], Files.snap(), Files.wal());
    ASSERT_TRUE(WIFEXITED(WaitStatus));
    // Every declared point must be reachable by the durability cycle —
    // a declared-but-dead point would exit 0 here and fail.
    ASSERT_EQ(WEXITSTATUS(WaitStatus), CrashPointExitCode);

    // The restart after the simulated power cut.
    KernelHistory Recovered;
    RecoveryReport Report =
        recoverKernelHistory(Recovered, Files.snap(), Files.wal());
    EXPECT_TRUE(Report.CompactStatus.ok()) << Report.CompactStatus.toString();

    // Invariant 1 — nothing durable before the crash is lost. The seed
    // snapshot and journal were both fsynced before the fork, so the
    // base table *plus both journaled deltas* must survive no matter
    // where the child died.
    ASSERT_NE(Recovered.find(7), std::nullopt);
    EXPECT_EQ(Recovered.find(7)->Invocations, 7u); // 5 base + 2 replayed
    ASSERT_NE(Recovered.find(11), std::nullopt);
    EXPECT_EQ(Recovered.find(11)->Invocations, 1u);
    EXPECT_EQ(Recovered.find(11)->QuarantinedRuns, 1u);
    ASSERT_NE(Recovered.find(9001), std::nullopt);
    ASSERT_NE(Recovered.find(555), std::nullopt);
    EXPECT_EQ(Recovered.find(555)->Invocations, 3u);
    EXPECT_TRUE(Recovered.find(555)->CpuOnly);

    // Invariant 2 — nothing the crash could not have persisted appears.
    // The child's post-recovery delta (key 777) is all-or-nothing: its
    // record was framed in one write, so it is either fully present or
    // fully absent, and the table never grows beyond the golden set.
    EXPECT_LE(Recovered.size(), 5u);
    if (auto Extra = Recovered.find(777)) {
      EXPECT_EQ(Extra->Invocations, 4u);
    }

    // Invariant 3 — recovery of the recovered state is a fixpoint with
    // valid CRCs everywhere.
    KernelHistory Again;
    RecoveryReport Second =
        recoverKernelHistory(Again, Files.snap(), Files.wal());
    EXPECT_EQ(Second.Outcome, RecoveryOutcome::Clean);
    EXPECT_TRUE(Second.SnapshotStatus.ok());
    EXPECT_TRUE(Second.JournalStatus.ok());
    expectSameEntries(Recovered, Again);

    // Invariant 4 — the journal reopens for appending at the recovered
    // epoch (the handoff a restarted scheduler performs).
    JournalOptions Opts;
    Opts.Path = Files.wal();
    auto Journal = HistoryJournal::open(Opts, Second.Epoch);
    EXPECT_TRUE(Journal.ok()) << Journal.status().toString();
  }
}

TEST(CrashHarness, RandomSigkillUnderLoadNeverLosesFlushedPrefix) {
  ScratchPair Files("sigkill");
  desktopCurves(); // characterize once in the parent; children inherit

  Xoshiro256 Rng(0x51631ull);
  for (int Round = 0; Round != 3; ++Round) {
    SCOPED_TRACE("round " + std::to_string(Round));
    int Pipe[2];
    ASSERT_EQ(pipe(Pipe), 0);

    pid_t Pid = fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      // Child: a journaling scheduler under continuous load. It flushes
      // a known prefix (3 kernels x 8 invocations), signals readiness,
      // then keeps executing until SIGKILL lands mid-anything.
      close(Pipe[0]);
      EasConfig Config;
      Config.HistoryFile = Files.snap();
      Config.Journal.Enabled = true;
      Config.Journal.GroupCommitRecords = 2;
      EasScheduler Scheduler(desktopCurves(), Metric::edp(), Config);
      if (!Scheduler.journalStatus().ok())
        _exit(5);
      SimProcessor Proc(haswellDesktop());
      KernelDesc Kernels[3] = {namedKernel("kill-a"), namedKernel("kill-b"),
                               namedKernel("kill-c")};
      for (int I = 0; I != 8; ++I)
        for (const KernelDesc &Kernel : Kernels)
          Scheduler.execute(Proc, Kernel, 1e6);
      if (!Scheduler.flushJournal().ok())
        _exit(6);
      char Ready = 'r';
      if (write(Pipe[1], &Ready, 1) != 1)
        _exit(7);
      for (uint64_t I = 0;; ++I)
        Scheduler.execute(Proc, Kernels[I % 3], 1e6);
    }

    close(Pipe[1]);
    char Ready = 0;
    ASSERT_EQ(read(Pipe[0], &Ready, 1), 1) << "child died before flushing";
    close(Pipe[0]);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1 + Rng.nextBounded(25)));
    ASSERT_EQ(kill(Pid, SIGKILL), 0);
    int WaitStatus = 0;
    ASSERT_EQ(waitpid(Pid, &WaitStatus, 0), Pid);
    ASSERT_TRUE(WIFSIGNALED(WaitStatus));
    ASSERT_EQ(WTERMSIG(WaitStatus), SIGKILL);

    // The restart. The flushed prefix — 8 invocations per kernel per
    // round — is durable; the in-flight tail may be partly lost but can
    // never corrupt what recovery returns.
    KernelHistory Recovered;
    RecoveryReport Report =
        recoverKernelHistory(Recovered, Files.snap(), Files.wal());
    EXPECT_TRUE(Report.CompactStatus.ok()) << Report.CompactStatus.toString();
    auto Entries = Recovered.entries();
    ASSERT_EQ(Entries.size(), 3u); // exactly the 3 kernels, nothing phantom
    for (const auto &Entry : Entries)
      EXPECT_GE(Entry.second.Invocations,
                static_cast<unsigned>(8 * (Round + 1)));

    // Idempotent, and the state chains into the next round's restart.
    KernelHistory Again;
    EXPECT_EQ(recoverKernelHistory(Again, Files.snap(), Files.wal()).Outcome,
              RecoveryOutcome::Clean);
    expectSameEntries(Recovered, Again);
  }
}

#endif // !_WIN32
