//===-- tests/DeviceTest.cpp - device/ unit tests --------------------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/device/SimCpuDevice.h"
#include "ecas/device/SimGpuDevice.h"
#include "ecas/hw/Presets.h"
#include "ecas/power/MicroBenchmarks.h"

#include <gtest/gtest.h>

using namespace ecas;

namespace {

KernelDesc simpleKernel() {
  KernelDesc Kernel;
  Kernel.Name = "test.simple";
  Kernel.CpuCyclesPerIter = 100.0;
  Kernel.GpuCyclesPerIter = 100.0;
  Kernel.BytesPerIter = 8.0;
  Kernel.LoadStoresPerIter = 4.0;
  Kernel.LlcMissRatio = 0.1;
  Kernel.InstrsPerIter = 120.0;
  Kernel.CpuVectorizable = 0.0;
  return Kernel.withAutoId();
}

} // namespace

TEST(KernelDesc, Validation) {
  KernelDesc Kernel = simpleKernel();
  EXPECT_TRUE(Kernel.valid());
  Kernel.LlcMissRatio = 1.5;
  EXPECT_FALSE(Kernel.valid());
  Kernel = simpleKernel();
  Kernel.GpuEfficiency = 0.0;
  EXPECT_FALSE(Kernel.valid());
  Kernel = simpleKernel();
  Kernel.CpuCyclesPerIter = -1.0;
  EXPECT_FALSE(Kernel.valid());
}

TEST(KernelDesc, AutoIdIsStableAndNonzero) {
  KernelDesc A = simpleKernel();
  KernelDesc B = simpleKernel();
  EXPECT_NE(A.Id, 0u);
  EXPECT_EQ(A.Id, B.Id);
  KernelDesc C = simpleKernel();
  C.Name = "test.other";
  C.Id = 0;
  C.withAutoId();
  EXPECT_NE(C.Id, A.Id);
}

TEST(SimCpuDevice, ThroughputScalesWithFrequency) {
  PlatformSpec Spec = haswellDesktop();
  SimCpuDevice Dev(Spec);
  Dev.enqueue(simpleKernel(), 1e9);
  RatePoint Slow = Dev.currentRate(1.0);
  RatePoint Fast = Dev.currentRate(2.0);
  EXPECT_NEAR(Fast.ComputeRate / Slow.ComputeRate, 2.0, 1e-9);
}

TEST(SimCpuDevice, SimdSpeedsUpVectorizableKernels) {
  PlatformSpec Spec = haswellDesktop();
  SimCpuDevice Dev(Spec);
  KernelDesc Scalar = simpleKernel();
  KernelDesc Vector = simpleKernel();
  Vector.CpuVectorizable = 1.0;
  Dev.enqueue(Scalar, 1e9);
  double ScalarRate = Dev.currentRate(3.0).ComputeRate;
  Dev.cancelRemaining();
  Dev.enqueue(Vector, 1e9);
  double VectorRate = Dev.currentRate(3.0).ComputeRate;
  EXPECT_GT(VectorRate, ScalarRate * 4.0);
}

TEST(SimCpuDevice, MissesAddStallCycles) {
  PlatformSpec Spec = haswellDesktop();
  SimCpuDevice Dev(Spec);
  KernelDesc Clean = simpleKernel();
  Clean.LlcMissRatio = 0.0;
  KernelDesc Missy = simpleKernel();
  Missy.LlcMissRatio = 0.8;
  Dev.enqueue(Clean, 1e9);
  RatePoint CleanRate = Dev.currentRate(3.0);
  Dev.cancelRemaining();
  Dev.enqueue(Missy, 1e9);
  RatePoint MissyRate = Dev.currentRate(3.0);
  EXPECT_LT(MissyRate.ComputeRate, CleanRate.ComputeRate);
  EXPECT_GT(MissyRate.LatencyStallFraction,
            CleanRate.LatencyStallFraction);
}

TEST(SimGpuDevice, OccupancyPenalizesSmallDispatches) {
  PlatformSpec Spec = haswellDesktop();
  // Zero launch latency so currentRate() sees executing work directly.
  Spec.Gpu.LaunchLatencySec = 0.0;
  SimGpuDevice Dev(Spec);
  KernelDesc Kernel = simpleKernel();
  double Lanes = Spec.Gpu.ExecutionUnits * Spec.Gpu.SimdWidth;
  Dev.enqueue(Kernel, Lanes);
  double FullRate = Dev.currentRate(1.2).ComputeRate;
  Dev.cancelRemaining();
  // A quarter-wave dispatch runs at a quarter of the lane-limited rate
  // (its duration is still one wave).
  Dev.enqueue(Kernel, Lanes / 4);
  double QuarterRate = Dev.currentRate(1.2).ComputeRate;
  EXPECT_NEAR(QuarterRate / FullRate, 0.25, 1e-9);
  Dev.cancelRemaining();
  // Beyond the lane count, throughput saturates.
  Dev.enqueue(Kernel, Lanes * 8);
  EXPECT_NEAR(Dev.currentRate(1.2).ComputeRate, FullRate, 1e-9);
}

TEST(SimGpuDevice, LaunchLatencyDelaysWork) {
  PlatformSpec Spec = haswellDesktop();
  SimGpuDevice Dev(Spec);
  Dev.enqueue(simpleKernel(), 1000.0);
  // During setup the device reports no issue rate.
  EXPECT_DOUBLE_EQ(Dev.currentRate(1.2).ComputeRate, 0.0);
  double Consumed =
      Dev.advance(Spec.Gpu.LaunchLatencySec / 2, 1.2, 100.0);
  EXPECT_DOUBLE_EQ(Consumed, Spec.Gpu.LaunchLatencySec / 2);
  EXPECT_DOUBLE_EQ(Dev.counters().IterationsDone, 0.0);
}

TEST(SimDevice, AdvanceStopsWhenQueueDrains) {
  PlatformSpec Spec = haswellDesktop();
  SimCpuDevice Dev(Spec);
  Dev.enqueue(simpleKernel(), 1000.0);
  double Needed = Dev.estimateCompletion(3.0, 100.0);
  double Consumed = Dev.advance(Needed * 10.0, 3.0, 100.0);
  EXPECT_NEAR(Consumed, Needed, Needed * 1e-9);
  EXPECT_FALSE(Dev.busy());
  EXPECT_NEAR(Dev.counters().IterationsDone, 1000.0, 1e-6);
}

TEST(SimDevice, CountersTrackKernelModel) {
  PlatformSpec Spec = haswellDesktop();
  SimCpuDevice Dev(Spec);
  KernelDesc Kernel = simpleKernel();
  Dev.enqueue(Kernel, 1000.0);
  Dev.advance(10.0, 3.0, 100.0);
  const PerfCounters &C = Dev.counters();
  EXPECT_NEAR(C.InstructionsRetired, 1000.0 * Kernel.InstrsPerIter, 1e-3);
  EXPECT_NEAR(C.LoadStores, 1000.0 * Kernel.LoadStoresPerIter, 1e-3);
  EXPECT_NEAR(C.LlcMisses,
              1000.0 * Kernel.LoadStoresPerIter * Kernel.LlcMissRatio,
              1e-3);
  EXPECT_NEAR(C.missPerLoadStore(), Kernel.LlcMissRatio, 1e-9);
}

TEST(SimDevice, CancelReturnsUnprocessed) {
  PlatformSpec Spec = haswellDesktop();
  SimCpuDevice Dev(Spec);
  Dev.enqueue(simpleKernel(), 1000.0);
  double Half = Dev.estimateCompletion(3.0, 100.0) / 2.0;
  Dev.advance(Half, 3.0, 100.0);
  double Returned = Dev.cancelRemaining();
  EXPECT_NEAR(Returned + Dev.counters().IterationsDone, 1000.0, 1e-6);
  EXPECT_FALSE(Dev.busy());
}

TEST(SimDevice, CounterDeltasSubtract) {
  PlatformSpec Spec = haswellDesktop();
  SimCpuDevice Dev(Spec);
  Dev.enqueue(simpleKernel(), 500.0);
  Dev.advance(10.0, 3.0, 100.0);
  PerfCounters Snapshot = Dev.counters();
  Dev.enqueue(simpleKernel(), 300.0);
  Dev.advance(10.0, 3.0, 100.0);
  PerfCounters Delta = Dev.counters() - Snapshot;
  EXPECT_NEAR(Delta.IterationsDone, 300.0, 1e-6);
}

TEST(SimDevice, BandwidthCapLimitsRate) {
  PlatformSpec Spec = haswellDesktop();
  SimCpuDevice Dev(Spec);
  KernelDesc Streamy = memoryBoundMicroKernel();
  Dev.enqueue(Streamy, 1e9);
  // 1 GB/s share: at 64 B/iter the cap is ~15.6M iters/s.
  double Consumed = Dev.advance(0.1, 3.6, 1.0);
  EXPECT_DOUBLE_EQ(Consumed, 0.1);
  EXPECT_NEAR(Dev.counters().IterationsDone, 0.1 * 1.0e9 / 64.0, 2.0);
  EXPECT_NEAR(Dev.lastTrafficGBs(), 1.0, 1e-6);
}

TEST(SimDevice, ActivityBlendsTowardMemoryUnderStalls) {
  PlatformSpec Spec = haswellDesktop();
  SimCpuDevice Dev(Spec);
  KernelDesc Compute = computeBoundMicroKernel();
  Dev.enqueue(Compute, 1e9);
  Dev.advance(0.01, 3.6, 100.0);
  EXPECT_NEAR(Dev.lastActivity(), Spec.CpuPower.ComputeActivity, 1e-6);

  SimCpuDevice Dev2(Spec);
  Dev2.enqueue(memoryBoundMicroKernel(), 1e9);
  Dev2.advance(0.01, 3.6, 100.0);
  EXPECT_LT(Dev2.lastActivity(), Spec.CpuPower.ComputeActivity);
  EXPECT_GT(Dev2.lastActivity(), Spec.CpuPower.MemoryActivity - 0.05);
}

TEST(SimDevice, EstimateCompletionSpansQueuedItems) {
  PlatformSpec Spec = haswellDesktop();
  SimCpuDevice Dev(Spec);
  KernelDesc Kernel = simpleKernel();
  Dev.enqueue(Kernel, 1000.0);
  double One = Dev.estimateCompletion(3.0, 100.0);
  Dev.enqueue(Kernel, 1000.0);
  double Two = Dev.estimateCompletion(3.0, 100.0);
  EXPECT_NEAR(Two, 2.0 * One, 1e-9);
}

TEST(SimDevice, SetupSecondsSeparateFromBusy) {
  PlatformSpec Spec = haswellDesktop();
  SimGpuDevice Dev(Spec);
  Dev.enqueue(simpleKernel(), 10000.0);
  Dev.advance(1.0, 1.2, 100.0);
  EXPECT_NEAR(Dev.counters().SetupSeconds, Spec.Gpu.LaunchLatencySec,
              1e-12);
  EXPECT_GT(Dev.counters().BusySeconds, 0.0);
}

TEST(SimDevice, TimeToHeadDrainReturnsSetupFirst) {
  PlatformSpec Spec = haswellDesktop();
  SimGpuDevice Dev(Spec);
  Dev.enqueue(simpleKernel(), 10000.0);
  // During launch setup the next event is setup completion.
  EXPECT_DOUBLE_EQ(Dev.timeToHeadDrain(1.2, 100.0),
                   Spec.Gpu.LaunchLatencySec);
  Dev.advance(Spec.Gpu.LaunchLatencySec, 1.2, 100.0);
  EXPECT_GT(Dev.timeToHeadDrain(1.2, 100.0), 0.0);
  EXPECT_LT(Dev.timeToHeadDrain(1.2, 100.0), 1.0);
}

TEST(SimDevice, EnqueueZeroIterationsIsNoop) {
  PlatformSpec Spec = haswellDesktop();
  SimCpuDevice Dev(Spec);
  Dev.enqueue(simpleKernel(), 0.0);
  EXPECT_FALSE(Dev.busy());
}
