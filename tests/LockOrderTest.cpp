//===-- tests/LockOrderTest.cpp - Lock-order validator tests ----------------===//
//
// Part of the ecas project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ecas/support/LockOrder.h"
#include "ecas/support/ThreadAnnotations.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace ecas;

namespace {

/// Fake lock instances: the validator only needs distinct addresses.
struct FakeLocks {
  char A1 = 0, A2 = 0, B = 0, C = 0;
};

} // namespace

TEST(LockOrder, SingleLockReportsNothing) {
  LockOrderValidator V;
  FakeLocks L;
  for (int I = 0; I != 100; ++I) {
    V.onAcquire(&L.A1, "A");
    V.onRelease(&L.A1, "A");
  }
  EXPECT_EQ(V.violationCount(), 0u);
}

TEST(LockOrder, ConsistentOrderReportsNothing) {
  LockOrderValidator V;
  FakeLocks L;
  // A -> B -> C, repeatedly and from several threads: a DAG, no report.
  auto Use = [&] {
    for (int I = 0; I != 50; ++I) {
      V.onAcquire(&L.A1, "A");
      V.onAcquire(&L.B, "B");
      V.onAcquire(&L.C, "C");
      V.onRelease(&L.C, "C");
      V.onRelease(&L.B, "B");
      V.onRelease(&L.A1, "A");
    }
  };
  std::thread T1(Use), T2(Use);
  Use();
  T1.join();
  T2.join();
  EXPECT_EQ(V.violationCount(), 0u);
}

TEST(LockOrder, InvertedOrderReportedOnceWithBothStacks) {
  LockOrderValidator V;
  FakeLocks L;
  // Record A -> B...
  V.onAcquire(&L.A1, "A");
  V.onAcquire(&L.B, "B");
  V.onRelease(&L.B, "B");
  V.onRelease(&L.A1, "A");
  EXPECT_EQ(V.violationCount(), 0u);
  // ...then close the cycle with B -> A.
  V.onAcquire(&L.B, "B");
  V.onAcquire(&L.A1, "A");
  V.onRelease(&L.A1, "A");
  V.onRelease(&L.B, "B");
  ASSERT_EQ(V.violationCount(), 1u);

  LockOrderValidator::Violation Report = V.violations()[0];
  // The edge that closed the cycle: acquiring A while holding B.
  EXPECT_EQ(Report.First, "B");
  EXPECT_EQ(Report.Second, "A");
  // Both orderings, outermost first.
  ASSERT_EQ(Report.PriorStack, (std::vector<std::string>{"A", "B"}));
  ASSERT_EQ(Report.CurrentStack, (std::vector<std::string>{"B", "A"}));
  EXPECT_NE(Report.Message.find("potential deadlock"), std::string::npos);
  EXPECT_NE(Report.Message.find("A -> B"), std::string::npos);
  EXPECT_NE(Report.Message.find("B -> A"), std::string::npos);

  // Re-running both orderings must not produce a second report: the
  // pair is deduplicated no matter how hot the path is.
  for (int I = 0; I != 10; ++I) {
    V.onAcquire(&L.A1, "A");
    V.onAcquire(&L.B, "B");
    V.onRelease(&L.B, "B");
    V.onRelease(&L.A1, "A");
    V.onAcquire(&L.B, "B");
    V.onAcquire(&L.A1, "A");
    V.onRelease(&L.A1, "A");
    V.onRelease(&L.B, "B");
  }
  EXPECT_EQ(V.violationCount(), 1u);
}

TEST(LockOrder, TransitiveCycleReported) {
  LockOrderValidator V;
  FakeLocks L;
  // A -> B and B -> C are fine; C -> A closes a three-class cycle even
  // though no single pair inverts.
  V.onAcquire(&L.A1, "A");
  V.onAcquire(&L.B, "B");
  V.onRelease(&L.B, "B");
  V.onRelease(&L.A1, "A");
  V.onAcquire(&L.B, "B");
  V.onAcquire(&L.C, "C");
  V.onRelease(&L.C, "C");
  V.onRelease(&L.B, "B");
  EXPECT_EQ(V.violationCount(), 0u);
  V.onAcquire(&L.C, "C");
  V.onAcquire(&L.A1, "A");
  V.onRelease(&L.A1, "A");
  V.onRelease(&L.C, "C");
  ASSERT_EQ(V.violationCount(), 1u);
  LockOrderValidator::Violation Report = V.violations()[0];
  EXPECT_EQ(Report.First, "C");
  EXPECT_EQ(Report.Second, "A");
  EXPECT_EQ(Report.CurrentStack, (std::vector<std::string>{"C", "A"}));
  // The prior side is the A -> B edge: A was held when the path toward C
  // started.
  EXPECT_EQ(Report.PriorStack, (std::vector<std::string>{"A", "B"}));
}

TEST(LockOrder, RecursiveClassAcquisitionReported) {
  LockOrderValidator V;
  FakeLocks L;
  // Two *instances* of one class on a single stack: the sharded-table
  // anti-pattern. Reported once.
  V.onAcquire(&L.A1, "Shard");
  V.onAcquire(&L.A2, "Shard");
  V.onRelease(&L.A2, "Shard");
  V.onRelease(&L.A1, "Shard");
  V.onAcquire(&L.A1, "Shard");
  V.onAcquire(&L.A2, "Shard");
  V.onRelease(&L.A2, "Shard");
  V.onRelease(&L.A1, "Shard");
  ASSERT_EQ(V.violationCount(), 1u);
  EXPECT_NE(V.violations()[0].Message.find("recursive acquisition"),
            std::string::npos);
  EXPECT_EQ(V.violations()[0].CurrentStack,
            (std::vector<std::string>{"Shard", "Shard"}));
}

TEST(LockOrder, InversionAcrossThreadsReported) {
  LockOrderValidator V;
  FakeLocks L;
  // Thread 1 records A -> B; after it joins, thread 2 records B -> A.
  // The graph is global, so the inversion is caught even though neither
  // thread ever holds both orderings itself.
  std::thread T1([&] {
    V.onAcquire(&L.A1, "A");
    V.onAcquire(&L.B, "B");
    V.onRelease(&L.B, "B");
    V.onRelease(&L.A1, "A");
  });
  T1.join();
  std::thread T2([&] {
    V.onAcquire(&L.B, "B");
    V.onAcquire(&L.A1, "A");
    V.onRelease(&L.A1, "A");
    V.onRelease(&L.B, "B");
  });
  T2.join();
  EXPECT_EQ(V.violationCount(), 1u);
}

TEST(LockOrder, ResetClearsGraphAndReports) {
  LockOrderValidator V;
  FakeLocks L;
  V.onAcquire(&L.A1, "A");
  V.onAcquire(&L.B, "B");
  V.onRelease(&L.B, "B");
  V.onRelease(&L.A1, "A");
  V.onAcquire(&L.B, "B");
  V.onAcquire(&L.A1, "A");
  V.onRelease(&L.A1, "A");
  V.onRelease(&L.B, "B");
  ASSERT_EQ(V.violationCount(), 1u);
  V.reset();
  EXPECT_EQ(V.violationCount(), 0u);
  // After reset the same inversion is reported again (fresh graph).
  V.onAcquire(&L.A1, "A");
  V.onAcquire(&L.B, "B");
  V.onRelease(&L.B, "B");
  V.onRelease(&L.A1, "A");
  V.onAcquire(&L.B, "B");
  V.onAcquire(&L.A1, "A");
  V.onRelease(&L.A1, "A");
  V.onRelease(&L.B, "B");
  EXPECT_EQ(V.violationCount(), 1u);
}

#if defined(ECAS_LOCK_ORDER)
// End-to-end through the AnnotatedMutex hooks: only meaningful when the
// build arms them (default preset). Uses the global validator, so reset
// around the test to stay independent of other instrumented code in
// this binary.
TEST(LockOrder, AnnotatedMutexFeedsGlobalValidator) {
  LockOrderValidator &V = LockOrderValidator::global();
  V.reset();
  AnnotatedMutex MuA{"Test.X"};
  AnnotatedMutex MuB{"Test.Y"};
  {
    LockGuard GA(MuA);
    LockGuard GB(MuB);
  }
  EXPECT_EQ(V.violationCount(), 0u);
  {
    LockGuard GB(MuB);
    LockGuard GA(MuA);
  }
  ASSERT_EQ(V.violationCount(), 1u);
  EXPECT_EQ(V.violations()[0].First, "Test.Y");
  EXPECT_EQ(V.violations()[0].Second, "Test.X");
  V.reset();
}

TEST(LockOrder, UniqueLockFeedsGlobalValidator) {
  LockOrderValidator &V = LockOrderValidator::global();
  V.reset();
  AnnotatedMutex MuA{"Test.P"};
  AnnotatedMutex MuB{"Test.Q"};
  {
    UniqueLock LA(MuA);
    UniqueLock LB(MuB);
  }
  {
    UniqueLock LB(MuB);
    UniqueLock LA(MuA);
  }
  EXPECT_EQ(V.violationCount(), 1u);
  V.reset();
}
#endif // ECAS_LOCK_ORDER
